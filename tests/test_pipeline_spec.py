"""Pipeline-spec serialization, stage-registry, and spec-driven decode tests.

Covers the three contracts of the stage-pipeline layer:

* the explicit ``to_header``/``from_header`` encoding round-trips every
  registered pipeline and rejects malformed/unknown/mis-versioned input
  with the typed errors from :mod:`repro.errors`;
* the registry listings (``COMPRESSORS``/``INTERP_COMPRESSORS``/
  ``supports_qp``) are views over the pipeline registrations;
* a spec derived from a frozen golden container decodes it to the exact
  pinned digest — proving spec-driven dispatch reads the same bytes the
  pre-pipeline decoders wrote.
"""
import hashlib
import json
from pathlib import Path

import pytest

from repro.compressors import COMPRESSORS, INTERP_COMPRESSORS, decompress_any, supports_qp
from repro.compressors.base import Blob
from repro.errors import PipelineSpecError, UnknownStageError, VersionError
from repro.pipeline import (
    PipelineSpec,
    StageSpec,
    pipeline_spec,
    registered_pipelines,
    registered_stage_ids,
    resolve_stage,
    spec_for_blob,
)
from repro.pipeline.spec import SPEC_HEADER_VERSION

pytestmark = pytest.mark.pipeline

DATA_DIR = Path(__file__).parent / "data"


# -- explicit header encoding -------------------------------------------------


@pytest.mark.parametrize("name", registered_pipelines())
def test_spec_header_round_trip(name):
    spec = pipeline_spec(name)
    encoded = spec.to_header()
    # the encoding must survive the container's JSON header
    encoded = json.loads(json.dumps(encoded))
    restored = PipelineSpec.from_header(encoded)
    assert restored == spec
    assert restored.stage_ids() == spec.stage_ids()


def test_spec_header_shape():
    encoded = pipeline_spec("sz3").to_header()
    assert encoded["version"] == SPEC_HEADER_VERSION
    assert encoded["name"] == "sz3"
    assert all(
        isinstance(sid, str) and isinstance(params, dict)
        for sid, params in encoded["stages"]
    )


def test_unknown_stage_id_rejected():
    encoded = {
        "version": SPEC_HEADER_VERSION,
        "name": "custom",
        "stages": [["golomb", {}]],
    }
    with pytest.raises(UnknownStageError) as exc:
        PipelineSpec.from_header(encoded)
    assert "golomb" in str(exc.value)
    # the typed error doubles as both the spec-layer and mapping-layer type
    assert isinstance(exc.value, PipelineSpecError)
    assert isinstance(exc.value, KeyError)


def test_resolve_stage_unknown_id():
    with pytest.raises(UnknownStageError):
        resolve_stage("does_not_exist")


def test_future_version_rejected():
    encoded = pipeline_spec("sz3").to_header()
    encoded["version"] = SPEC_HEADER_VERSION + 1
    with pytest.raises(VersionError):
        PipelineSpec.from_header(encoded)


@pytest.mark.parametrize(
    "encoded",
    [
        "not a dict",
        {"version": "1", "name": "sz3", "stages": [["huffman", {}]]},
        {"version": SPEC_HEADER_VERSION, "name": "", "stages": [["huffman", {}]]},
        {"version": SPEC_HEADER_VERSION, "name": "sz3", "stages": []},
        {"version": SPEC_HEADER_VERSION, "name": "sz3", "stages": [["huffman"]]},
        {"version": SPEC_HEADER_VERSION, "name": "sz3", "stages": [[1, {}]]},
    ],
    ids=["non-dict", "str-version", "empty-name", "no-stages", "1-tuple", "int-id"],
)
def test_malformed_header_rejected(encoded):
    with pytest.raises(PipelineSpecError):
        PipelineSpec.from_header(encoded)


def test_stage_specs_buildable():
    # every stage of every registered pipeline instantiates from its params
    for name in registered_pipelines():
        spec = pipeline_spec(name).validate()
        for s in spec.stages:
            stage = s.build()
            assert stage.stage_id == s.stage
            assert callable(stage.forward) and callable(stage.inverse)


def test_registered_stage_ids_sorted_and_resolvable():
    ids = registered_stage_ids()
    assert ids == tuple(sorted(ids))
    for sid in ids:
        assert resolve_stage(sid).stage_id == sid


# -- registry as a view over the registrations --------------------------------


def test_registry_derived_from_pipelines():
    assert COMPRESSORS == registered_pipelines()
    assert INTERP_COMPRESSORS == tuple(
        n for n in COMPRESSORS if pipeline_spec(n).has_stage("interp_predict")
    )
    for name in COMPRESSORS:
        assert supports_qp(name) == pipeline_spec(name).has_stage("qp")


def test_supports_qp_unknown_name():
    with pytest.raises(KeyError):
        supports_qp("nonexistent")


def test_sz3_predictor_variants():
    assert pipeline_spec("sz3", predictor="lorenzo").stage_ids()[0] == "lorenzo_predict"
    assert (
        pipeline_spec("sz3", predictor="regression").stage_ids()[0]
        == "regression_predict"
    )
    assert pipeline_spec("sz3").stage_ids()[0] == "interp_predict"


def test_pipeline_lint_clean():
    # the CI lint (tools/check_api.py) holds every registered pipeline to
    # the stage-chain contract; `pytest -m pipeline` runs it in-process
    import sys

    tools = str(Path(__file__).resolve().parents[1] / "tools")
    sys.path.insert(0, tools)
    try:
        import check_api
    finally:
        sys.path.remove(tools)
    results = check_api.check_pipelines()
    bad = {name: probs for name, probs in results.items() if probs}
    assert not bad, f"pipeline-lint violations: {bad}"
    assert set(results) == {f"pipeline[{n}]" for n in registered_pipelines()}


# -- spec-driven golden decode ------------------------------------------------


def test_spec_derived_from_golden_blob():
    raw = (DATA_DIR / "sz3_miranda_qp.blob").read_bytes()
    blob = Blob.from_bytes(raw)
    spec = spec_for_blob(blob.header, blob.sections)
    assert spec.name == "sz3"
    assert spec.stage_ids() == (
        "interp_predict",
        "quantize",
        "qp",
        "huffman",
        "lossless",
    )
    # the fixture was compressed with QP enabled, so the derived qp stage
    # carries the config the engine meta recorded
    assert spec.stage("qp").params.get("config")
    # the spec stage params rebuild a working QP transform
    assert spec.stage("qp").build().config.to_dict() == blob.header["engine"]["qp"]


def test_spec_driven_decode_matches_golden_digest():
    manifest = json.loads((DATA_DIR / "golden_decode.json").read_text())
    entry = manifest["sz3_miranda_qp.blob"]
    raw = (DATA_DIR / "sz3_miranda_qp.blob").read_bytes()
    assert hashlib.sha256(raw).hexdigest() == entry["fixture_sha256"]
    out = decompress_any(raw)
    assert list(out.shape) == entry["shape"]
    assert str(out.dtype) == entry["dtype"]
    assert hashlib.sha256(out.tobytes()).hexdigest() == entry["decoded_sha256"]


def test_spec_for_blob_refines_entropy_from_wire_id():
    import numpy as np

    from repro.compressors.base import encode_index_stream

    stream = encode_index_stream(np.arange(200, dtype=np.int64), entropy="range")
    header = {"compressor": "sz3"}
    spec = spec_for_blob(header, {"indices": stream})
    assert spec.has_stage("range")
    assert not spec.has_stage("huffman")
    # header-only derivation keeps the pipeline's default entropy stage
    assert spec_for_blob(header).has_stage("huffman")
