"""Progressive retrieval tests: level-ordered wire format, prefix decode,
range requests, and early-abort transfer.

Everything here carries the ``progressive`` marker (``pytest -m
progressive``).  The golden test freezes the level-ordered container bytes
(sha256 + level table) so encoder drift is caught the same way the plain
``sz3`` goldens catch it; the fault matrix truncates the blob at (and just
before) every level boundary and demands typed errors from the full
decoder while the prefix decoder degrades to the deepest complete level;
the service tests round-trip a coarse fetch + refinement over real TCP and
pin the tenant-namespace rejection; the transfer test asserts the
early-abort path measurably moves fewer bytes, counter-verified.
"""
from __future__ import annotations

import asyncio
import hashlib
import json
import struct

import numpy as np
import pytest

from repro.compressors.sz3 import SZ3
from repro.compressors.progressive import (
    SZ3Progressive,
    decompress_prefix,
    level_table,
    prefix_length,
)
from repro.errors import (
    CorruptBlobError,
    ServiceClosedError,
    TenantAccessError,
    TruncatedStreamError,
)
from repro.obs import observe
from repro.service import (
    ArchiveGetRequest,
    ArchivePutRequest,
    Gateway,
    GatewayConfig,
    JobSpec,
    RangeGetRequest,
    ServiceClient,
    decode_message,
    encode_message,
    start_server,
)
from repro.testing.faults import run_corruption_matrix
from repro.transfer.pipeline import transfer_slices
from repro.utils.levels import num_levels

pytestmark = pytest.mark.progressive

ERROR_BOUND = 1e-3

#: frozen digest of the level-ordered container for the fixture field below —
#: regenerating it means the wire bytes changed, which needs a header
#: ``progressive.version`` bump, not a silent re-freeze
GOLDEN_SHA256 = "4501544c10b99701340677eac4e73f371c21ec8a6b160c06068c5e2d3412daf4"
GOLDEN_LEVEL_ENDS = {4: 884, 3: 1082, 2: 1709, 1: 5924}


@pytest.fixture()
def field():
    rng = np.random.default_rng(20260809)
    return np.cumsum(rng.standard_normal((14, 12, 10), dtype=np.float32), axis=0)


@pytest.fixture()
def codec():
    return SZ3Progressive(error_bound=ERROR_BOUND)


@pytest.fixture()
def blob(codec, field):
    return codec.compress(field)


def _run(coro):
    return asyncio.run(coro)


# -- frozen wire format --------------------------------------------------------


def test_golden_level_ordered_container_frozen(blob):
    assert hashlib.sha256(blob).hexdigest() == GOLDEN_SHA256
    assert {e["level"]: e["end"] for e in level_table(blob)} == GOLDEN_LEVEL_ENDS


def test_level_table_is_coarse_first_and_covers_blob(blob):
    table = level_table(blob)
    levels = [e["level"] for e in table]
    ends = [e["end"] for e in table]
    assert levels == sorted(levels, reverse=True)
    assert ends == sorted(ends) and len(set(ends)) == len(ends)
    assert ends[-1] == len(blob)


def test_full_decode_bit_identical_to_plain_sz3(codec, field, blob):
    plain = SZ3(error_bound=ERROR_BOUND, predictor="interp")
    expected = plain.decompress(plain.compress(field))
    np.testing.assert_array_equal(codec.decompress(blob), expected)


# -- prefix decode -------------------------------------------------------------


def test_every_level_prefix_decodes_within_recorded_bound(blob, field):
    for entry in level_table(blob):
        prefix = blob[: prefix_length(blob, entry["level"])]
        got = decompress_prefix(prefix)
        assert got.level == entry["level"]
        assert got.eb == entry["eb"]
        assert got.consumed == len(prefix)
        assert np.abs(got.array.astype(np.float64) - field).max() <= got.eb


def test_finest_prefix_is_bit_identical_to_full_decode(codec, blob):
    got = decompress_prefix(blob)
    assert got.level == 1
    np.testing.assert_array_equal(got.array, codec.decompress(blob))


def test_mid_level_prefix_falls_back_to_previous_boundary(blob, field):
    table = level_table(blob)
    # one byte short of level-3's boundary: only level 4 is complete
    short = blob[: table[1]["end"] - 1]
    got = decompress_prefix(short)
    assert got.level == table[0]["level"]
    assert got.consumed == table[0]["end"]
    assert np.abs(got.array.astype(np.float64) - field).max() <= got.eb


def test_prefix_shorter_than_coarsest_level_is_typed(blob):
    with pytest.raises(TruncatedStreamError):
        decompress_prefix(blob[: level_table(blob)[0]["end"] - 1])


def test_decode_to_level_rejects_unknown_level(codec, blob):
    with pytest.raises(ValueError):
        codec.decode_to_level(blob, 99)


# -- fault matrix: truncation at every level boundary --------------------------


def test_truncation_at_every_level_boundary_is_typed(codec, blob):
    injectors = {}
    for entry in level_table(blob)[:-1]:  # full length == unchanged, skip
        end = prefix_length(blob, entry["level"])
        injectors[f"trunc@L{entry['level']}"] = (
            lambda data, seed=0, end=end: data[:end]
        )
        injectors[f"trunc@L{entry['level']}-1"] = (
            lambda data, seed=0, end=end: data[: end - 1]
        )
    results = run_corruption_matrix(
        blob, codec.decompress, injectors=injectors, seeds=[0]
    )
    assert results and all(r.ok for r in results), [
        (r.injector, r.outcome, r.detail) for r in results if not r.ok
    ]
    # the same level-aligned truncations are *valid* prefixes, not faults
    for entry in level_table(blob):
        got = decompress_prefix(blob[: prefix_length(blob, entry["level"])])
        assert got.level == entry["level"]


# -- service: range requests over the wire -------------------------------------


def test_range_request_wire_roundtrip_and_validation():
    req = RangeGetRequest(tenant="t", name="vol", level=3, start=128)
    back = decode_message(encode_message(req))
    assert (back.tenant, back.name, back.level, back.start) == (
        "t", "vol", 3, 128,
    )
    frame = encode_message(RangeGetRequest(tenant="t", name="vol"))
    hlen = struct.unpack("<I", frame[4:8])[0]
    header = json.loads(frame[8 : 8 + hlen])
    for bad in ({"level": "coarse"}, {"start": -1}, {"level": True}):
        tampered = dict(header, **bad)
        hbytes = json.dumps(tampered).encode()
        with pytest.raises(CorruptBlobError):
            decode_message(frame[:4] + struct.pack("<I", len(hbytes)) + hbytes)


def test_tcp_coarse_fetch_then_refine_to_full(field, tmp_path):
    coarsest = num_levels(field.shape)
    spec = JobSpec(compressor="sz3_progressive", error_bound=ERROR_BOUND)

    async def main():
        cfg = GatewayConfig(
            workers=1, archive_path=str(tmp_path / "range.rar1")
        )
        async with Gateway(cfg) as gw:
            server = await start_server(gw, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with ServiceClient("127.0.0.1", port) as client:
                await client.archive_put("t", "vol", field, spec)
                coarse = await client.range_get("t", "vol", level=coarsest)
                assert coarse.meta["level"] == coarsest
                assert len(coarse.result) == coarse.meta["prefix_bytes"]
                assert len(coarse.result) < coarse.meta["total_bytes"]
                preview = decompress_prefix(coarse.result)
                assert preview.level == coarsest
                assert (
                    np.abs(preview.array.astype(np.float64) - field).max()
                    <= coarse.meta["eb"]
                )
                full = await client.refine("t", "vol", coarse.result)
                assert full == await client.archive_get("t", "vol")
                np.testing.assert_array_equal(
                    decompress_prefix(full).array,
                    SZ3Progressive(error_bound=ERROR_BOUND).decompress(full),
                )
            server.close()
            await server.wait_closed()
            snap = gw.observation.metrics.snapshot()
            assert "stage.bytes{stage=service.range_prefix}" in snap
            assert "stage.bytes{stage=service.range_full}" in snap

    _run(main())


def test_cross_tenant_names_are_forbidden_typed(field, tmp_path):
    async def main():
        cfg = GatewayConfig(
            workers=1, archive_path=str(tmp_path / "tenants.rar1")
        )
        async with Gateway(cfg) as gw:
            spec = JobSpec(compressor="sz3_progressive", error_bound=1e-3)
            await gw.submit(
                ArchivePutRequest.from_array("alice", "vol", field, spec)
            )
            # bob cannot name his way into alice's namespace
            requests = (
                ArchiveGetRequest(tenant="bob", name="../alice/vol"),
                RangeGetRequest(tenant="bob", name="alice/vol"),
                ArchivePutRequest.from_array("bob", "x/y", field, spec),
            )
            for req in requests:
                with pytest.raises(TenantAccessError):
                    await gw.submit(req)
            # over the wire the same rejection is a typed error reply
            reply = decode_message(await gw.handle(encode_message(requests[1])))
            assert not reply.ok and reply.error == "forbidden"
            with pytest.raises(TenantAccessError):
                reply.raise_for_status()
            snap = gw.observation.metrics.snapshot()
            key = "service.rejected{reason=forbidden,tenant=bob}"
            assert snap[key]["value"] == 4

    _run(main())


def test_drain_mid_range_request_completes_admitted_work(field, tmp_path):
    spec = JobSpec(compressor="sz3_progressive", error_bound=ERROR_BOUND)
    coarsest = num_levels(field.shape)

    async def main():
        gw = Gateway(
            GatewayConfig(workers=1, archive_path=str(tmp_path / "d.rar1"))
        )
        gw.start()
        put = await gw.submit(
            ArchivePutRequest.from_array("t", "vol", field, spec)
        )
        assert put.ok
        pending = [
            asyncio.ensure_future(
                gw.submit(
                    RangeGetRequest(tenant="t", name="vol", level=level)
                )
            )
            for level in (coarsest, None, coarsest)
        ]
        await asyncio.sleep(0)
        await gw.stop()  # drain: admitted range reads must finish
        replies = await asyncio.gather(*pending)
        assert all(r.ok for r in replies)
        assert len(replies[0].result) < len(replies[1].result)
        with pytest.raises(ServiceClosedError):
            await gw.submit(RangeGetRequest(tenant="t", name="vol"))

    _run(main())


# -- transfer: early abort -----------------------------------------------------


def _blobs(field, n=3):
    codec = SZ3Progressive(error_bound=ERROR_BOUND)
    return {
        f"s{i}": codec.compress(np.ascontiguousarray(field + i))
        for i in range(n)
    }


def test_transfer_early_abort_moves_measurably_fewer_bytes(field):
    blobs = _blobs(field)
    coarsest = num_levels(field.shape)
    with observe() as ob:
        report = transfer_slices(
            dict(blobs), lambda n, p: p, target_level=coarsest
        )
    assert sorted(report.delivered) == sorted(blobs)
    snap = ob.metrics.snapshot()
    prefix = snap["stage.bytes{stage=transfer.prefix}"]["value"]
    full = snap["stage.bytes{stage=transfer.full}"]["value"]
    assert prefix == report.summary()["verified_bytes"]
    assert full == report.summary()["full_bytes"] == sum(
        len(b) for b in blobs.values()
    )
    assert prefix < full / 2  # the abort must be *measurable*, not nominal
    # received prefixes are valid coarse previews
    received = {}
    transfer_slices(
        dict(blobs), lambda n, p: p, received=received, target_level=coarsest
    )
    for got in received.values():
        assert decompress_prefix(got).level == coarsest


def test_transfer_full_run_has_no_prefix_counters(field):
    blobs = _blobs(field, n=1)
    with observe() as ob:
        report = transfer_slices(dict(blobs), lambda n, p: p)
    snap = ob.metrics.snapshot()
    assert "stage.bytes{stage=transfer.prefix}" not in snap
    assert report.summary()["verified_bytes"] == sum(
        len(b) for b in blobs.values()
    )


def test_transfer_byte_budget_skips_over_budget_slices(field):
    blobs = _blobs(field)
    sizes = [len(b) for b in blobs.values()]
    budget = sizes[0]  # exactly one full slice fits
    received = {}
    report = transfer_slices(
        dict(blobs), lambda n, p: p, received=received, byte_budget=budget
    )
    assert len(report.delivered) == 1
    assert report.summary()["skipped"] == 2
    assert report.quarantined == []  # skipped is not quarantined
    assert sum(len(b) for b in received.values()) <= budget
    with pytest.raises(ValueError):
        transfer_slices(dict(blobs), lambda n, p: p, byte_budget=-1)
