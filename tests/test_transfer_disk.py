"""Tests for the disk-backed transfer pipeline."""
import numpy as np
import pytest

from repro.core import QPConfig
from repro.datasets import generate
from repro.transfer import run_disk_pipeline


@pytest.fixture(scope="module")
def slices():
    data = generate("rtm", shape=(4, 32, 32, 16))
    return [np.ascontiguousarray(data[i]) for i in range(data.shape[0])]


def test_disk_pipeline_end_to_end(tmp_path, slices):
    res = run_disk_pipeline(
        slices, tmp_path, "sz3", 1e-3, predictor="interp"
    )
    assert res.n_slices == len(slices)
    assert 0 < res.archive_bytes < res.raw_bytes
    assert res.max_abs_error <= 1e-3 * (1 + 1e-9)
    assert res.total > 0
    assert res.cr > 1
    # real I/O happened
    assert (tmp_path / "transfer.rarc").exists()
    assert res.write_seconds > 0 and res.read_seconds > 0


def test_disk_pipeline_qp_reduces_archive(tmp_path, slices):
    eb = 2e-4
    base = run_disk_pipeline(slices, tmp_path / "b", "sz3", eb, predictor="interp")
    qp = run_disk_pipeline(
        slices, tmp_path / "q", "sz3", eb, qp=QPConfig(), predictor="interp"
    )
    assert qp.archive_bytes <= base.archive_bytes
    assert qp.transfer_seconds <= base.transfer_seconds


def test_disk_pipeline_rerun_overwrites(tmp_path, slices):
    run_disk_pipeline(slices[:2], tmp_path, "sz3", 1e-3, predictor="interp")
    res = run_disk_pipeline(slices[:2], tmp_path, "sz3", 1e-3, predictor="interp")
    assert res.n_slices == 2
