"""Tests for the blob container, v1 integrity envelope, and index streams."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.base import (
    Blob,
    decode_index_stream,
    encode_index_stream,
)
from repro.errors import (
    CorruptBlobError,
    IntegrityError,
    TruncatedStreamError,
    VersionError,
)
from repro.io import integrity


class TestBlob:
    def test_roundtrip(self):
        b = Blob({"a": 1, "b": [1, 2]}, {"x": b"abc", "y": b""})
        out = Blob.from_bytes(b.to_bytes())
        assert out.header["a"] == 1 and out.header["b"] == [1, 2]
        assert out.sections == {"x": b"abc", "y": b""}

    def test_section_order_preserved(self):
        b = Blob({}, {"z": b"1", "a": b"22", "m": b"333"})
        out = Blob.from_bytes(b.to_bytes())
        assert list(out.sections) == ["z", "a", "m"]

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            Blob.from_bytes(b"XXXX" + b"\x00" * 8)

    def test_trailing_bytes_rejected(self):
        raw = Blob({}, {"x": b"abc"}).to_bytes()
        with pytest.raises(ValueError):
            Blob.from_bytes(raw + b"!")

    def test_no_sections(self):
        out = Blob.from_bytes(Blob({"k": "v"}, {}).to_bytes())
        assert out.header["k"] == "v"
        assert out.sections == {}


class TestIntegrityEnvelope:
    def _raw(self):
        return Blob({"k": "v"}, {"x": b"abc", "y": b"\x00" * 40}).to_bytes()

    def test_seal_unseal_roundtrip(self):
        raw = self._raw()
        sealed = integrity.seal(raw)
        assert sealed != raw
        assert sealed[:4] == integrity.BLOB_MAGIC_V1
        assert integrity.unseal(sealed) == raw

    def test_seal_preserves_payload_bytes_exactly(self):
        # the envelope wraps the v0 bytes unmodified — this is what keeps
        # the golden digests valid for checksummed blobs
        raw = self._raw()
        assert integrity.seal(raw)[integrity.ENVELOPE_BYTES:] == raw

    def test_unseal_rejects_v0_bytes(self):
        # readers route v0 via Blob.from_bytes directly; unseal is strict
        with pytest.raises(IntegrityError):
            integrity.unseal(self._raw())

    def test_is_sealed(self):
        raw = self._raw()
        assert not integrity.is_sealed(raw)
        assert integrity.is_sealed(integrity.seal(raw))

    def test_unknown_version_rejected(self):
        sealed = bytearray(integrity.seal(self._raw()))
        sealed[4] = 0x7F
        with pytest.raises(VersionError):
            integrity.unseal(bytes(sealed))

    def test_crc_mismatch_rejected(self):
        sealed = bytearray(integrity.seal(self._raw()))
        sealed[-1] ^= 0x01  # flip a payload bit
        with pytest.raises(IntegrityError):
            integrity.unseal(bytes(sealed))

    def test_truncated_payload_rejected(self):
        sealed = integrity.seal(self._raw())
        with pytest.raises(TruncatedStreamError):
            integrity.unseal(sealed[:-3])

    def test_trailing_bytes_rejected(self):
        sealed = integrity.seal(self._raw())
        with pytest.raises(IntegrityError):
            integrity.unseal(sealed + b"!")

    def test_blob_to_bytes_checksum_flag(self):
        b = Blob({"k": 1}, {"x": b"abc"})
        plain = b.to_bytes()
        sealed = b.to_bytes(checksum=True)
        assert plain[:4] == b"RPRC"
        assert sealed[:4] == integrity.BLOB_MAGIC_V1
        assert integrity.unseal(sealed) == plain

    def test_blob_from_bytes_auto_unseals(self):
        b = Blob({"k": 1}, {"x": b"abc"})
        out = Blob.from_bytes(b.to_bytes(checksum=True))
        assert out.header["k"] == 1
        assert out.sections == {"x": b"abc"}

    def test_sealed_blob_corruption_is_typed(self):
        sealed = bytearray(Blob({"k": 1}, {"x": b"abc" * 30}).to_bytes(checksum=True))
        sealed[25] ^= 0x40
        with pytest.raises(CorruptBlobError):
            Blob.from_bytes(bytes(sealed))

    def test_envelope_info(self):
        raw = self._raw()
        info = integrity.envelope_info(integrity.seal(raw))
        assert info["format_version"] == integrity.BLOB_FORMAT_VERSION
        assert info["payload_len"] == len(raw)
        assert info["crc_ok"] is True
        assert integrity.envelope_info(raw) == {"format_version": 0, "checksum": None}


class TestIndexStream:
    def test_roundtrip_signed(self):
        v = np.array([-5, 0, 3, -1, 100, -32768], dtype=np.int64)
        assert np.array_equal(decode_index_stream(encode_index_stream(v)), v)

    def test_empty(self):
        out = decode_index_stream(encode_index_stream(np.empty(0, dtype=np.int64)))
        assert out.size == 0

    def test_all_backends(self):
        v = np.arange(-50, 50)
        for backend in ("zlib", "rle", "lz77", "raw"):
            blob = encode_index_stream(v, backend)
            assert np.array_equal(decode_index_stream(blob), v)

    def test_compresses_low_entropy(self):
        v = np.zeros(100000, dtype=np.int64)
        v[::97] = 1
        blob = encode_index_stream(v)
        assert len(blob) < v.size // 8  # far below 1 bit/symbol on average

    @given(
        hnp.arrays(np.int64, st.integers(0, 3000),
                   elements=st.integers(-(2**40), 2**40))
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, v):
        assert np.array_equal(decode_index_stream(encode_index_stream(v)), v)
