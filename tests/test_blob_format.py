"""Tests for the blob container and shared index-stream stages."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.base import (
    Blob,
    decode_index_stream,
    encode_index_stream,
)


class TestBlob:
    def test_roundtrip(self):
        b = Blob({"a": 1, "b": [1, 2]}, {"x": b"abc", "y": b""})
        out = Blob.from_bytes(b.to_bytes())
        assert out.header["a"] == 1 and out.header["b"] == [1, 2]
        assert out.sections == {"x": b"abc", "y": b""}

    def test_section_order_preserved(self):
        b = Blob({}, {"z": b"1", "a": b"22", "m": b"333"})
        out = Blob.from_bytes(b.to_bytes())
        assert list(out.sections) == ["z", "a", "m"]

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            Blob.from_bytes(b"XXXX" + b"\x00" * 8)

    def test_trailing_bytes_rejected(self):
        raw = Blob({}, {"x": b"abc"}).to_bytes()
        with pytest.raises(ValueError):
            Blob.from_bytes(raw + b"!")

    def test_no_sections(self):
        out = Blob.from_bytes(Blob({"k": "v"}, {}).to_bytes())
        assert out.header["k"] == "v"
        assert out.sections == {}


class TestIndexStream:
    def test_roundtrip_signed(self):
        v = np.array([-5, 0, 3, -1, 100, -32768], dtype=np.int64)
        assert np.array_equal(decode_index_stream(encode_index_stream(v)), v)

    def test_empty(self):
        out = decode_index_stream(encode_index_stream(np.empty(0, dtype=np.int64)))
        assert out.size == 0

    def test_all_backends(self):
        v = np.arange(-50, 50)
        for backend in ("zlib", "rle", "lz77", "raw"):
            blob = encode_index_stream(v, backend)
            assert np.array_equal(decode_index_stream(blob), v)

    def test_compresses_low_entropy(self):
        v = np.zeros(100000, dtype=np.int64)
        v[::97] = 1
        blob = encode_index_stream(v)
        assert len(blob) < v.size // 8  # far below 1 bit/symbol on average

    @given(
        hnp.arrays(np.int64, st.integers(0, 3000),
                   elements=st.integers(-(2**40), 2**40))
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, v):
        assert np.array_equal(decode_index_stream(encode_index_stream(v)), v)
