"""Unit tests for the shared interpolation engine internals."""
import numpy as np
import pytest

from repro.compressors.interp_engine import (
    EngineConfig,
    _pass_prediction,
    compress_volume,
    decompress_volume,
    level_error_bounds,
    trial_level_bits,
)
from repro.core import QPConfig
from repro.utils.levels import anchor_slices, level_passes, num_levels


@pytest.fixture
def field():
    n = 33
    x, y, z = np.meshgrid(*[np.linspace(0, 1, n)] * 3, indexing="ij")
    return (np.sin(4 * np.pi * x) * np.cos(2 * np.pi * y) * (1 + z)).astype(np.float64)


def roundtrip(data, cfg):
    meta, stream, literals, anchors = compress_volume(data, cfg)
    return decompress_volume(
        meta, stream, literals, anchors, data.shape, data.dtype, cfg.error_bound
    )


class TestLevelErrorBounds:
    def test_level1_unscaled(self):
        f = level_error_bounds(0.1, 4, alpha=2.0, beta=8.0)
        assert f[1] == 1.0

    def test_alpha_scaling(self):
        f = level_error_bounds(0.1, 4, alpha=2.0, beta=100.0)
        assert f[2] == pytest.approx(0.5)
        assert f[3] == pytest.approx(0.25)

    def test_beta_cap(self):
        f = level_error_bounds(0.1, 6, alpha=2.0, beta=4.0)
        assert f[6] == pytest.approx(1 / 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            level_error_bounds(0.1, 3, alpha=0.5, beta=2.0)


class TestPassPrediction:
    def test_linear_exact_on_linear_field(self):
        z, y, x = np.meshgrid(*[np.arange(17.0)] * 3, indexing="ij")
        data = 2 * z + 3 * y - x
        for level in (1, 2):
            for p in level_passes(data.shape, level):
                pred = _pass_prediction(data, p, "linear")
                actual = data[p.target]
                # interior points of a linear field are predicted exactly
                assert np.median(np.abs(pred - actual)) < 1e-9

    def test_prediction_shape_matches_target(self, field):
        for p in level_passes(field.shape, 1):
            pred = _pass_prediction(field, p, "cubic")
            assert pred.shape == field[p.target].shape


class TestEngineRoundtrip:
    def test_bound_per_level_scaling(self, field):
        eb = 1e-3
        cfg = EngineConfig(
            error_bound=eb,
            level_eb_factors=level_error_bounds(eb, num_levels(field.shape), 2.0, 8.0),
        )
        out = roundtrip(field, cfg)
        assert np.abs(out - field).max() <= eb

    def test_anchors_exact(self, field):
        cfg = EngineConfig(error_bound=1e-2)
        meta, stream, literals, anchors = compress_volume(field, cfg)
        out = decompress_volume(
            meta, stream, literals, anchors, field.shape, field.dtype, 1e-2
        )
        assert np.array_equal(out[anchor_slices(field.shape)], field[anchor_slices(field.shape)])

    def test_stream_sizes_deterministic(self, field):
        cfg = EngineConfig(error_bound=1e-3)
        _, s1, _, _ = compress_volume(field, cfg)
        _, s2, _, _ = compress_volume(field, cfg)
        assert np.array_equal(s1, s2)

    def test_qp_stream_differs_but_decodes_identically(self, field):
        base = EngineConfig(error_bound=1e-3)
        qp = EngineConfig(error_bound=1e-3, qp=QPConfig())
        out_base = roundtrip(field, base)
        out_qp = roundtrip(field, qp)
        assert np.array_equal(out_base, out_qp)

    def test_corrupt_stream_size_detected(self, field):
        cfg = EngineConfig(error_bound=1e-3)
        meta, stream, literals, anchors = compress_volume(field, cfg)
        with pytest.raises(ValueError):
            decompress_volume(
                meta, stream[:-5], literals, anchors, field.shape, field.dtype, 1e-3
            )

    def test_level_schemes_roundtrip(self, field):
        cfg = EngineConfig(
            error_bound=1e-3,
            level_schemes={1: {"structure": "sequential", "axis_order": (2, 1, 0)},
                           2: {"structure": "multidim", "axis_order": None}},
        )
        out = roundtrip(field, cfg)
        assert np.abs(out - field).max() <= 1e-3

    def test_scheme_selector_invoked_and_recorded(self, field):
        calls = []

        def selector(arr, level, cfg):
            calls.append(level)
            return {"structure": "sequential", "axis_order": None}

        cfg = EngineConfig(error_bound=1e-3, scheme_selector=selector)
        meta, *_ = compress_volume(field, cfg)
        assert sorted(calls, reverse=True) == sorted(
            [int(k) for k in meta["level_schemes"]], reverse=True
        )


class TestTrialLevelBits:
    def test_trial_does_not_mutate_input(self, field):
        cfg = EngineConfig(error_bound=1e-3)
        before = field.copy()
        trial_level_bits(field, 1, cfg, {"structure": "sequential", "axis_order": None})
        assert np.array_equal(field, before)

    def test_trial_discriminates_anisotropy(self):
        # a field varying fast along axis 0 only: reversed order should win
        z = np.linspace(0, 30 * np.pi, 64)
        data = np.broadcast_to(np.sin(z)[:, None, None], (64, 16, 16)).copy()
        cfg = EngineConfig(error_bound=1e-4, interp="cubic")
        seq = trial_level_bits(data, 1, cfg, {"structure": "sequential", "axis_order": None})
        rev = trial_level_bits(data, 1, cfg, {"structure": "sequential", "axis_order": (2, 1, 0)})
        assert seq != rev
