"""Unit tests for the bit-level I/O substrate."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.bitstream import BitReader, BitWriter, pack_bits, unpack_bits


def test_pack_unpack_roundtrip():
    bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1], dtype=np.uint8)
    packed = pack_bits(bits)
    assert np.array_equal(unpack_bits(packed, bits.size), bits)


def test_unpack_too_many_bits_raises():
    with pytest.raises(ValueError):
        unpack_bits(b"\x00", 9)


def test_write_read_single_uint():
    w = BitWriter()
    w.write_uint(0b1011, 4)
    r = BitReader(w.getvalue(), nbits=4)
    assert r.read_uint(4) == 0b1011


def test_write_uint_zero_width_is_noop():
    w = BitWriter()
    w.write_uint(0, 0)
    assert len(w) == 0


def test_write_uint_overflow_raises():
    w = BitWriter()
    with pytest.raises(ValueError):
        w.write_uint(4, 2)
    with pytest.raises(ValueError):
        w.write_uint(-1, 2)


def test_write_bit_sequence():
    w = BitWriter()
    for b in (1, 0, 1, 1):
        w.write_bit(b)
    r = BitReader(w.getvalue(), nbits=4)
    assert [r.read_bit() for _ in range(4)] == [1, 0, 1, 1]


def test_reader_eof():
    r = BitReader(b"", nbits=0)
    with pytest.raises(EOFError):
        r.read_bit()
    with pytest.raises(EOFError):
        r.read_uint(1)


def test_write_codes_matches_individual_writes():
    codes = np.array([0b1, 0b10, 0b111, 0b0], dtype=np.uint64)
    lengths = np.array([1, 2, 3, 2], dtype=np.int64)
    w1 = BitWriter()
    w1.write_codes(codes, lengths)
    w2 = BitWriter()
    for c, ln in zip(codes, lengths):
        w2.write_uint(int(c), int(ln))
    assert w1.getvalue() == w2.getvalue()
    assert len(w1) == int(lengths.sum())


def test_write_codes_empty():
    w = BitWriter()
    w.write_codes(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64))
    assert w.getvalue() == b""


def test_write_codes_shape_mismatch():
    w = BitWriter()
    with pytest.raises(ValueError):
        w.write_codes(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.int64))


def test_reader_bits_view_and_advance():
    w = BitWriter()
    w.write_uint(0b10110, 5)
    r = BitReader(w.getvalue(), nbits=5)
    r.advance(2)
    assert np.array_equal(r.bits_view(), np.array([1, 1, 0], dtype=np.uint8))
    with pytest.raises(EOFError):
        r.advance(4)


@given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 21)), max_size=50))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(pairs):
    """Any sequence of (value, width) pairs round-trips through the stream."""
    pairs = [(v & ((1 << w) - 1), w) for v, w in pairs]
    w = BitWriter()
    for v, width in pairs:
        w.write_uint(v, width)
    total = sum(width for _, width in pairs)
    r = BitReader(w.getvalue(), nbits=total)
    for v, width in pairs:
        assert r.read_uint(width) == v
