"""Adaptive-quantize property/fault layer (run alone via ``pytest -m adaptive``).

Three families of guarantees for the reserved-index adaptive quantizer:

* **Properties** — on random fields across dtypes, bounds, and (bits,
  threshold) grids: the global bound always holds, hard-to-predict points
  additionally meet the tightened bound ``eb / 2**bits``, the wire stream
  respects the reserved-band partition (easy ``|w| < t``, hard
  ``t <= |w| < radius``, literals exactly at the sentinel), and encode-side
  ``decoded`` is bit-identical to ``dequantize`` — across kernel backends.
* **Integration** — every registered compressor accepts ``auto=True`` and
  the result decodes via ``decompress_any`` within the bound; the sampling
  tuner is deterministic under the seeded conftest RNG; with adaptivity off
  the golden digests of ``test_golden_identity`` are reproduced unchanged.
* **Faults** — tampered reserved indices, out-of-range ``adaptive_bits`` in
  a rebuilt header, truncation, and the full corruption matrix on adaptive
  blobs: every failure is a typed :class:`repro.errors.ReproError` within
  the deadline.
"""
import hashlib

import numpy as np
import pytest

import repro
from repro.compressors import (
    COMPRESSORS,
    decompress_any,
    get_compressor,
    supports_qp,
)
from repro.compressors.base import Blob, CompressionState
from repro.core.autotune import autotune, sample_blocks
from repro.core.config import ADAPTIVE_MAX_BITS, AdaptiveConfig, QPConfig
from repro.errors import CorruptBlobError, ReproError, TruncatedStreamError
from repro.quantize import AdaptiveLinearQuantizer
from repro.quantize.adaptive import reserved_bias
from repro.testing import run_corruption_matrix

pytestmark = pytest.mark.adaptive

DEADLINE_S = 10.0


def _field(seed, n=600, dtype=np.float32, scale=1.0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 4 * np.pi, n)
    return (scale * (np.sin(x) + 0.3 * rng.standard_normal(n))).astype(dtype)


# -- properties: bounds, wire bands, bit-identity ----------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("bits,threshold", [(1, 1), (2, 4), (3, 2), (8, 16)])
@pytest.mark.parametrize("eb", [1e-2, 1e-4])
def test_roundtrip_bounds_and_wire_bands(dtype, bits, threshold, eb):
    values = _field(seed=bits * 31 + threshold, dtype=dtype)
    rng = np.random.default_rng(99)
    # predictions with a long error tail so easy, hard, and literal points
    # all occur in one stream
    preds = (values + rng.standard_normal(values.size).astype(dtype)
             * np.array(eb * 8, dtype)).astype(dtype)
    preds[::97] = values[::97] + dtype(50 * eb)

    quant = AdaptiveLinearQuantizer(eb, radius=512, bits=bits, threshold=threshold)
    res = quant.quantize(values, preds)

    err = np.abs(res.decoded.astype(np.float64) - values.astype(np.float64))
    assert np.all(err <= eb * (1 + 1e-12)), "global bound violated"

    sent = res.indices == quant.sentinel
    hard = (np.abs(res.indices) >= threshold) & ~sent
    easy = ~hard & ~sent
    assert np.all(err[hard] <= quant.tight_bound * (1 + 1e-12)), (
        "adaptive points must meet the tightened bound eb / 2**bits"
    )
    # reserved-band partition of the wire alphabet
    assert np.all(np.abs(res.indices[easy]) < threshold)
    assert np.all(np.abs(res.indices[hard]) < quant.radius)
    assert res.literals.size == int(sent.sum())

    recon = quant.dequantize(res.indices, preds, literals=res.literals)
    assert recon.dtype == values.dtype
    assert np.array_equal(recon, res.decoded), (
        "dequantize must be bit-identical to the encode-side reconstruction"
    )


def test_reserved_band_is_exact_in_floating_point():
    """The in-band signal relies on |qt| >= t*2^b - 2^(b-1) holding exactly
    whenever |q| >= t; sweep diffs straddling every coarse bucket edge."""
    eb, bits, threshold = 1e-3, 3, 4
    quant = AdaptiveLinearQuantizer(eb, radius=1 << 14, bits=bits, threshold=threshold)
    edges = (np.arange(1, 40, dtype=np.float64) - 0.5) * 2 * eb
    diffs = np.concatenate([
        edges * (1 - 1e-15), edges, edges * (1 + 1e-15), -edges,
    ])
    preds = np.zeros(diffs.size)
    res = quant.quantize(diffs, preds)
    sent = res.indices == quant.sentinel
    coarse = np.rint(diffs / (2 * eb))
    hard = (np.abs(coarse) >= threshold) & ~sent
    assert np.all(np.abs(res.indices[hard]) >= threshold), (
        "a hard point escaped the reserved band — decoder would misscale it"
    )
    bias = reserved_bias(bits, threshold)
    assert bias == threshold * (1 << bits) - (1 << (bits - 1)) - threshold


@pytest.mark.parametrize("bad_kwargs", [
    {"bits": 0}, {"bits": ADAPTIVE_MAX_BITS + 1}, {"threshold": 0},
])
def test_quantizer_rejects_out_of_range_params(bad_kwargs):
    with pytest.raises(ValueError):
        AdaptiveLinearQuantizer(1e-3, **bad_kwargs)


def test_literal_count_mismatch_is_detected():
    quant = AdaptiveLinearQuantizer(1e-3, radius=64)
    values = _field(seed=5, n=128)
    res = quant.quantize(values, np.zeros_like(values))
    with pytest.raises(ValueError):
        quant.dequantize(res.indices, np.zeros_like(values),
                         literals=res.literals[:-1] if res.literals.size
                         else np.ones(1, values.dtype))


def _backends_to_try():
    from repro import kernels

    names = ["numpy"]
    if "numba" in kernels.available_backends("adaptive_quantize"):
        names.append("numba")
    return names


def test_bit_stable_across_kernel_backends(monkeypatch):
    """Backend selection may change speed, never bytes: the wire stream and
    reconstruction must be identical whichever backend resolves — including
    via the REPRO_KERNEL_BACKEND environment override."""
    from repro import kernels

    values = _field(seed=11, n=4096)
    rng = np.random.default_rng(12)
    preds = (values + 5e-3 * rng.standard_normal(values.size)).astype(values.dtype)

    outs = {}
    for name in _backends_to_try():
        quant = AdaptiveLinearQuantizer(1e-3, bits=2, threshold=3, backend=name)
        res = quant.quantize(values, preds)
        outs[name] = (res.indices, res.decoded, res.literals)
    # env-var selection must resolve to the same bytes as explicit selection
    monkeypatch.setenv(kernels.ENV_GLOBAL, "numpy")
    res = AdaptiveLinearQuantizer(1e-3, bits=2, threshold=3).quantize(values, preds)
    outs["env:numpy"] = (res.indices, res.decoded, res.literals)
    # an unavailable backend name falls back rather than crashing or drifting
    monkeypatch.setenv(kernels.ENV_GLOBAL, "numba")
    res = AdaptiveLinearQuantizer(1e-3, bits=2, threshold=3).quantize(values, preds)
    outs["env:numba-or-fallback"] = (res.indices, res.decoded, res.literals)

    ref = outs["numpy"]
    for name, (idx, dec, lit) in outs.items():
        assert np.array_equal(idx, ref[0]), f"{name}: wire stream drifted"
        assert np.array_equal(dec, ref[1]), f"{name}: reconstruction drifted"
        assert np.array_equal(lit, ref[2]), f"{name}: literal stream drifted"


# -- integration: engine bound, auto=True, tuner determinism -----------------


def test_engine_adaptive_regions_meet_tightened_bound(smooth_field):
    """End to end through the pipeline: points coded via reserved indices in
    any interpolation pass must meet eb / 2**bits, everything the bound."""
    eb = 1e-3 * float(smooth_field.max() - smooth_field.min())
    cfg = AdaptiveConfig(bits=3, threshold=2)
    comp = get_compressor("sz3", eb, adaptive=cfg)
    st = CompressionState()
    blob = comp.compress(smooth_field, state=st)
    out = decompress_any(blob)
    err = np.abs(out.astype(np.float64) - smooth_field.astype(np.float64))
    assert np.all(err <= eb * (1 + 1e-12))
    idx = st.index_volume
    interp_pts = st.extras["pass_levels"] > 0  # anchors never carry indices
    hard = (np.abs(idx) >= cfg.threshold) & (idx != -comp.radius) & interp_pts
    assert hard.any(), "test field produced no adaptive points — weak test"
    tight = eb / (1 << cfg.bits)
    assert np.all(err[hard] <= tight * (1 + 1e-12)), (
        f"adaptive region exceeded tightened bound {tight:.3e}"
    )


def test_adaptive_header_roundtrips_via_decompress_any(smooth_field):
    eb = 1e-3
    for name in ("mgard", "sz3", "qoz", "hpez"):
        comp = get_compressor(name, eb, adaptive={"bits": 2, "threshold": 3})
        blob = comp.compress(smooth_field)
        out = decompress_any(blob)
        err = np.abs(out.astype(np.float64) - smooth_field.astype(np.float64))
        assert err.max() <= eb * (1 + 1e-12), name


@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_every_compressor_accepts_auto(name, smooth_field):
    """The unified surface: auto=True on all seven compressors produces a
    blob that decodes through the format-sniffing entry point within the
    bound.  Non-engine compressors treat it as a no-op."""
    eb = 1e-2
    kwargs = {"qp": QPConfig.disabled()} if supports_qp(name) else {}
    comp = get_compressor(name, eb, **kwargs)
    blob = comp.compress(smooth_field, auto=True)
    out = decompress_any(blob)
    err = float(np.abs(out.astype(np.float64)
                       - smooth_field.astype(np.float64)).max())
    assert err <= eb * (1 + 1e-9), f"{name}: {err} > {eb}"
    if comp.last_tuning is not None:
        d = comp.last_tuning.to_dict()
        assert 0 <= d["adaptive_bits"] <= ADAPTIVE_MAX_BITS
        assert d["n_blocks"] >= 1


def test_tuner_is_deterministic_under_seeded_rng(noisy_field, tuner_rng):
    eb = 1e-2 * float(noisy_field.max() - noisy_field.min())
    a = autotune(noisy_field, eb, rng=tuner_rng)
    b = autotune(noisy_field, eb, rng=np.random.default_rng(2024))
    assert a == b, "same seed must reproduce the same decision"
    assert a.score > -np.inf and a.n_blocks >= 1
    assert 0.0 <= a.adaptive_fraction <= 1.0


def test_sample_blocks_deterministic_and_in_bounds(noisy_field, tuner_rng):
    blocks = sample_blocks(noisy_field, block_side=16, max_blocks=3,
                           rng=tuner_rng)
    again = sample_blocks(noisy_field, block_side=16, max_blocks=3,
                          rng=np.random.default_rng(2024))
    assert len(blocks) >= 1
    for x, y in zip(blocks, again):
        assert x.shape == y.shape and np.array_equal(x, y)
        assert all(s <= 16 for s in x.shape)


def test_golden_digests_unchanged_with_adaptivity_off():
    """Frozen-bytes regression: the adaptive variant is *additive* — with it
    off (the default) the exact pre-adaptive golden bytes come out."""
    from tests.test_golden_identity import GOLDEN

    data = repro.generate("miranda", shape=(24, 20, 22), seed=0)
    eb = 1e-3 * float(data.max() - data.min())
    for qp_on, key in ((False, "miranda-24x20x22/sz3/qp=off"),
                       (True, "miranda-24x20x22/sz3/qp=on")):
        kw = {"qp": QPConfig()} if qp_on else {}
        blob = get_compressor("sz3", eb, **kw).compress(data)
        assert hashlib.sha256(blob).hexdigest() == GOLDEN[key]
        header = Blob.from_bytes(blob).header
        assert "adaptive" not in header.get("engine", {}), (
            "adaptivity-off blobs must not carry the adaptive header block"
        )


# -- faults: tampering, bad headers, truncation, the matrix ------------------


@pytest.fixture(scope="module")
def adaptive_blob():
    data = repro.generate("miranda", shape=(20, 18, 16), seed=0)
    eb = 1e-3 * float(data.max() - data.min())
    comp = get_compressor("sz3", eb, qp=QPConfig(),
                          adaptive=AdaptiveConfig(bits=2, threshold=3))
    return data, comp.compress(data), eb


def _reheader(blob_bytes, mutate):
    """Parse, apply ``mutate(header)``, re-serialize with intact sections."""
    blob = Blob.from_bytes(blob_bytes)
    mutate(blob.header)
    return blob.to_bytes()


@pytest.mark.parametrize("bad_bits", [0, ADAPTIVE_MAX_BITS + 1, 99, "2", None])
def test_out_of_range_adaptive_bits_in_header_is_typed(adaptive_blob, bad_bits):
    _, blob, _ = adaptive_blob

    def mutate(h):
        h["engine"]["adaptive"]["bits"] = bad_bits

    with pytest.raises(CorruptBlobError):
        decompress_any(_reheader(blob, mutate))


def test_unknown_adaptive_header_key_is_typed(adaptive_blob):
    _, blob, _ = adaptive_blob

    def mutate(h):
        h["engine"]["adaptive"]["mode"] = "extra"

    with pytest.raises(CorruptBlobError):
        decompress_any(_reheader(blob, mutate))


def test_bad_threshold_in_header_is_typed(adaptive_blob):
    _, blob, _ = adaptive_blob

    def mutate(h):
        h["engine"]["adaptive"]["threshold"] = 0

    with pytest.raises(CorruptBlobError):
        decompress_any(_reheader(blob, mutate))


def test_tampered_reserved_indices_stay_bounded(adaptive_blob):
    """Rewriting wire indices inside/outside the reserved band must never
    crash untyped or hang: decode either raises typed or returns the declared
    shape (the index payload is not integrity-protected without the seal)."""
    data, blob, _ = adaptive_blob
    rng = np.random.default_rng(0)
    parsed = Blob.from_bytes(blob)
    payload = bytearray(parsed.sections["indices"])
    for trial in range(8):
        corrupted = bytearray(payload)
        # flip bytes inside the entropy-coded index section only
        for pos in rng.integers(16, len(corrupted), size=6):
            corrupted[pos] ^= int(rng.integers(1, 256))
        sections = dict(parsed.sections, indices=bytes(corrupted))
        rebuilt = Blob(dict(parsed.header), sections).to_bytes()
        try:
            out = decompress_any(rebuilt)
        except ReproError:
            continue
        assert out.shape == data.shape and out.dtype == data.dtype


def test_truncated_adaptive_blob_is_typed(adaptive_blob):
    _, blob, _ = adaptive_blob
    for cut in (0, 3, 7, len(blob) // 4, len(blob) // 2, len(blob) - 1):
        with pytest.raises((TruncatedStreamError, CorruptBlobError)):
            decompress_any(blob[:cut])


@pytest.mark.faults
def test_corruption_matrix_on_adaptive_blobs(adaptive_blob):
    """Full injector matrix on the adaptive spec variant, sealed and not:
    sealed catches everything; unsealed never goes untyped or over deadline."""
    data, blob, eb = adaptive_blob
    comp = get_compressor("sz3", eb, qp=QPConfig(),
                          adaptive=AdaptiveConfig(bits=2, threshold=3))
    sealed = comp.compress(data, checksum=True)

    results = run_corruption_matrix(
        sealed, decompress_any, seeds=range(3), deadline_s=DEADLINE_S
    )
    bad = [r for r in results if not r.ok]
    assert not bad, [
        f"{r.injector}/seed={r.seed}: {r.outcome} ({r.detail})" for r in bad
    ]

    def decode(b):
        out = decompress_any(b)
        assert out.shape == data.shape and out.dtype == data.dtype
        return out

    results = run_corruption_matrix(
        blob, decode, seeds=range(3), deadline_s=DEADLINE_S
    )
    untyped = [r for r in results if r.outcome == "untyped"]
    assert not untyped, [
        f"{r.injector}/seed={r.seed}: {r.detail}" for r in untyped
    ]
    assert all(r.elapsed_s <= DEADLINE_S for r in results)
