"""Tests for the adaptive range coder (SZ3's alternative entropy stage)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.codecs.rangecoder import RangeCodec
from repro.core import shannon_entropy


@pytest.fixture
def codec():
    return RangeCodec()


def test_empty(codec):
    assert codec.decode(codec.encode(np.empty(0, dtype=np.int64))).size == 0


def test_zeros(codec):
    v = np.zeros(5000, dtype=np.int64)
    blob = codec.encode(v)
    assert np.array_equal(codec.decode(blob), v)
    # adaptive model drives all-zero streams far below 1 bit/symbol —
    # something Huffman cannot do
    assert len(blob) * 8 < v.size / 4


def test_signed_values(codec):
    v = np.array([0, -1, 1, -100, 100, 2**40, -(2**40)])
    assert np.array_equal(codec.decode(codec.encode(v)), v)


def test_near_entropy_on_skewed(codec):
    rng = np.random.default_rng(0)
    sym = np.rint(rng.normal(0, 1.5, 30000)).astype(np.int64)
    blob = codec.encode(sym)
    bits_per_sym = len(blob) * 8 / sym.size
    entropy = shannon_entropy(sym - sym.min())
    assert bits_per_sym < entropy * 1.1 + 0.1


def test_beats_huffman_on_very_skewed(codec):
    """The no-1-bit-floor advantage: ~95% zeros."""
    rng = np.random.default_rng(1)
    sym = (rng.random(40000) < 0.05).astype(np.int64) * rng.integers(1, 4, 40000)
    from repro.codecs import HuffmanCodec

    rc = len(codec.encode(sym))
    hc = len(HuffmanCodec().encode(sym))
    assert rc < hc


def test_bad_magic(codec):
    with pytest.raises(ValueError):
        codec.decode(b"XXXX" + b"\x00" * 12)


@given(
    hnp.arrays(np.int64, st.integers(0, 1500),
               elements=st.integers(-(2**45), 2**45))
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(v):
    codec = RangeCodec()
    assert np.array_equal(codec.decode(codec.encode(v)), v)
