"""Tests for the future-work extensions: QP on wavelet-domain indices
(SPERR+QP) and the fast Case-I inverse."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.sperr import SPERR, subband_regions
from repro.core import QPConfig, qp_forward, qp_inverse


class TestSubbandRegions:
    def test_tiles_exactly(self):
        shape = (16, 32)
        counter = np.zeros(shape, dtype=int)
        for _, region in subband_regions(shape, 3):
            counter[region] += 1
        assert counter.min() == 1 and counter.max() == 1

    def test_levels_and_counts_3d(self):
        regions = subband_regions((16, 16, 16), 2)
        # per level: 2^3 - 1 = 7 detail bands; plus one approximation band
        assert len(regions) == 2 * 7 + 1
        assert regions[-1][0] == 2

    def test_finest_level_first(self):
        regions = subband_regions((16, 16), 2)
        assert regions[0][0] == 1


class TestSperrQP:
    def test_reconstruction_identical(self, smooth_field):
        eb = 1e-3
        base = SPERR(eb)
        plus = SPERR(eb, qp=QPConfig())
        out_base = base.decompress(base.compress(smooth_field))
        out_plus = plus.decompress(plus.compress(smooth_field))
        assert np.array_equal(out_base, out_plus)

    def test_bound_holds_with_qp(self, smooth_field):
        eb = 1e-4
        comp = SPERR(eb, qp=QPConfig())
        out = comp.decompress(comp.compress(smooth_field))
        assert np.abs(out.astype(np.float64) - smooth_field).max() <= eb

    def test_qp_helps_on_smooth_turbulence(self):
        from repro.datasets import generate

        data = generate("miranda", "velocityx", shape=(48, 48, 48))
        eb = 1e-4 * float(data.max() - data.min())
        s_base = len(SPERR(eb).compress(data))
        s_qp = len(SPERR(eb, qp=QPConfig()).compress(data))
        assert s_qp < s_base

    def test_disabled_qp_matches_vanilla_blob_size(self, smooth_field):
        eb = 1e-3
        a = SPERR(eb).compress(smooth_field)
        b = SPERR(eb, qp=QPConfig.disabled()).compress(smooth_field)
        assert abs(len(a) - len(b)) < 64  # only header qp dict differs


class TestFastCase1Inverse:
    def test_matches_forward(self):
        rng = np.random.default_rng(0)
        q = rng.integers(-20, 20, (6, 15, 17))
        cfg = QPConfig(condition="I")
        qp = qp_forward(q, -99, cfg, level=1)
        assert np.array_equal(qp_inverse(qp, -99, cfg, level=1), q)

    def test_case1_inverse_is_prefix_sum(self):
        # for Case I the inverse must equal cumulative sums along both axes
        rng = np.random.default_rng(1)
        qp = rng.integers(-5, 5, (3, 8, 9))
        cfg = QPConfig(condition="I")
        out = qp_inverse(qp, -99, cfg, level=1)
        ref = np.cumsum(np.cumsum(qp, axis=-1), axis=-2)
        assert np.array_equal(out, ref)

    @given(
        hnp.arrays(np.int64, hnp.array_shapes(min_dims=2, max_dims=3, max_side=9),
                   elements=st.integers(-50, 50))
    )
    @settings(max_examples=60, deadline=None)
    def test_property_case1_roundtrip(self, q):
        cfg = QPConfig(condition="I")
        qp = qp_forward(q, -999, cfg, level=1)
        assert np.array_equal(qp_inverse(qp, -999, cfg, level=1), q)
