"""Smoke test for the per-stage pipeline benchmark harness.

Runs ``tools/bench.py --smoke`` in-process (tiny grids, one repeat) and
validates the JSON it emits, so the harness every performance PR depends on
cannot silently rot.
"""
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[1] / "tools"


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    sys.path.insert(0, str(TOOLS))
    try:
        import bench
    finally:
        sys.path.remove(str(TOOLS))
    out = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
    assert bench.main(["--smoke", "--out", str(out)]) == 0
    with open(out) as fh:
        return json.load(fh)


def test_report_envelope(report):
    assert report["schema_version"] == 1
    assert report["smoke"] is True
    assert report["has_stage_profiler"] is True
    assert report["rel_error_bound"] == 1e-3
    assert isinstance(report["python"], str) and isinstance(report["numpy"], str)


def test_full_matrix_present(report):
    # 4 bases x qp on/off on the smoke grid (no parallel row in smoke mode)
    combos = {(r["base"], r["qp"]) for r in report["results"]}
    assert combos == {
        (base, qp) for base in ("sz3", "qoz", "hpez", "mgard") for qp in (False, True)
    }


def test_row_schema(report):
    required = {
        "base", "qp", "dataset", "shape", "error_bound", "compressed_bytes",
        "ratio", "compress_s", "decompress_s", "compress_mbs",
        "decompress_mbs", "max_error", "stages",
    }
    for row in report["results"]:
        assert required <= set(row)
        assert row["compressed_bytes"] > 0
        assert row["ratio"] > 1.0
        assert row["compress_mbs"] > 0 and row["decompress_mbs"] > 0
        assert row["max_error"] <= row["error_bound"] * (1 + 1e-9)


def test_stage_profiles_recorded(report):
    for row in report["results"]:
        stages = row["stages"]
        assert set(stages) == {"compress", "decompress"}
        for direction in ("compress", "decompress"):
            entry = stages[direction]
            assert entry["total_s"] > 0
            # the interpolation pipeline must at least hit these stages
            assert {"predict", "quantize", "huffman", "lossless"} <= set(
                entry["stages"]
            )
            # sz3's auto predictor may pick the Lorenzo path (no QP stage);
            # the other bases always run the interpolation engine
            if row["qp"] and row["base"] != "sz3":
                assert "qp" in entry["stages"]
