"""Smoke test for the per-stage pipeline benchmark harness.

Runs ``tools/bench.py --smoke`` in-process (tiny grids, one repeat) and
validates the JSON it emits, so the harness every performance PR depends on
cannot silently rot.
"""
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[1] / "tools"


@pytest.fixture(scope="module")
def bench_mod():
    sys.path.insert(0, str(TOOLS))
    try:
        import bench
    finally:
        sys.path.remove(str(TOOLS))
    return bench


@pytest.fixture(scope="module")
def report_path(bench_mod, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
    assert bench_mod.main(["--smoke", "--out", str(out)]) == 0
    return out


@pytest.fixture(scope="module")
def report(report_path):
    with open(report_path) as fh:
        return json.load(fh)


def test_report_envelope(report):
    assert report["schema_version"] == 7
    assert report["timing_source"] == "repro.obs"
    assert report["smoke"] is True
    assert report["has_stage_profiler"] is True
    assert report["rel_error_bound"] == 1e-3
    assert isinstance(report["python"], str) and isinstance(report["numpy"], str)
    assert isinstance(report["kernel_backends_run"], list)
    assert "numpy" in report["kernel_backends_run"]
    assert isinstance(report["numba_available"], bool)
    assert isinstance(report["has_rss_sampler"], bool)
    assert "stream_summary" in report


def test_full_matrix_present(report):
    # 4 bases x qp on/off on the smoke grid (no parallel row in smoke mode),
    # plus one auto-tuned row per base (schema v5); the v6 streamed pair
    # rows carry a "stream" key and are checked separately
    fixed = [r for r in report["results"]
             if not r.get("auto") and "stream" not in r]
    auto = [r for r in report["results"] if r.get("auto")]
    combos = {(r["base"], r["qp"]) for r in fixed}
    assert combos == {
        (base, qp) for base in ("sz3", "qoz", "hpez", "mgard") for qp in (False, True)
    }
    assert {r["base"] for r in auto} == {"sz3", "qoz", "hpez", "mgard"}


def test_auto_rows_record_tuner_decisions(report):
    for row in report["results"]:
        if not row.get("auto"):
            continue
        assert 0.0 <= row["adaptive_fraction"] <= 1.0
        tuning = row["tuning"]
        assert tuning is not None
        assert {"interp", "structure", "axis_order", "alpha", "beta",
                "adaptive_bits", "adaptive_threshold", "qp", "score",
                "adaptive_fraction", "n_blocks", "block_side"} <= set(tuning)
        assert tuning["n_blocks"] >= 1


def test_row_schema(report):
    required = {
        "base", "qp", "dataset", "shape", "error_bound", "compressed_bytes",
        "ratio", "compress_s", "decompress_s", "compress_mbs",
        "decompress_mbs", "max_error",
    }
    for row in report["results"]:
        assert required <= set(row)
        assert "peak_rss_mb" in row and "peak_rss_delta_mb" in row
        if "stream" not in row:  # matrix rows run in-process with profiles
            assert {"stages", "kernel_backend", "kernel_backends"} <= set(row)
            assert set(row["kernel_backends"]) == {
                "adaptive_quantize", "huffman", "interp", "lorenzo", "qp"
            }
        assert row["compressed_bytes"] > 0
        assert row["ratio"] > 1.0
        assert row["compress_mbs"] > 0 and row["decompress_mbs"] > 0
        assert row["max_error"] <= row["error_bound"] * (1 + 1e-9)


def test_stream_pair_rows_and_summary(report):
    pair = [r for r in report["results"] if "stream" in r]
    assert {r["stream"] for r in pair} == {False, True}
    streamed = next(r for r in pair if r["stream"])
    assert streamed["segments"] >= 1
    assert streamed["slab_bytes"] > 0
    assert streamed["isolated_subprocess"] is True
    summary = report["stream_summary"]
    assert summary["dataset"] == streamed["dataset"]
    assert summary["compress_throughput_ratio"] > 0
    assert set(summary["gates"]) == {"throughput_ok", "rss_ok"}


def test_stage_profiles_recorded(report):
    for row in report["results"]:
        if "stream" in row:  # subprocess pair rows carry no span profiles
            continue
        stages = row["stages"]
        assert set(stages) == {"compress", "decompress"}
        for direction in ("compress", "decompress"):
            entry = stages[direction]
            assert entry["total_s"] > 0
            # the interpolation pipeline must at least hit these stages
            assert {"predict", "quantize", "huffman", "lossless"} <= set(
                entry["stages"]
            )
            # sz3's auto predictor may pick the Lorenzo path (no QP stage);
            # the other bases always run the interpolation engine
            if row["qp"] and row["base"] != "sz3":
                assert "qp" in entry["stages"]


def test_compare_identical_reports_passes(bench_mod, report_path):
    # a report compared against itself has zero deltas -> exit 0
    assert bench_mod.main(
        ["--compare", str(report_path), str(report_path)]
    ) == 0


def test_compare_flags_injected_regression(bench_mod, report_path, report, tmp_path):
    # slow one row's end-to-end decompress and one of its decode stages by
    # 50% -- the gate must exit nonzero at the default 10% threshold
    slow = json.loads(json.dumps(report))
    row = slow["results"][0]
    row["decompress_s"] = max(row["decompress_s"], 1e-3) * 1.5
    stages = row["stages"]["decompress"]["stages"]
    for st in stages.values():
        st["seconds"] = max(st["seconds"], 1e-3) * 1.5
    slow_path = tmp_path / "slow.json"
    slow_path.write_text(json.dumps(slow))
    assert bench_mod.main(["--compare", str(report_path), str(slow_path)]) == 1
    # and an equally large *speedup* is not a regression
    assert bench_mod.main(["--compare", str(slow_path), str(report_path)]) == 0


def test_compare_reports_counts_stage_metrics(bench_mod, report):
    flat = bench_mod._flatten_timings(report)
    # end-to-end plus per-stage keys for every row, both directions
    assert any(k.endswith(":decompress_s") for k in flat)
    assert any(".huffman" in k and ":decompress." in k for k in flat)
    assert all(v >= 0 for v in flat.values())
    # numpy rows keep unsuffixed keys, so a v3 baseline compares cleanly
    assert not any("/backend=numpy" in k for k in flat)
    # auto rows are suffixed so they never collide with the fixed rows
    assert any("/auto:" in k for k in flat)


def test_flatten_suffixes_compiled_backend_rows(bench_mod, report):
    forged = json.loads(json.dumps(report))
    for row in forged["results"]:
        row["kernel_backend"] = "numba"
    flat = bench_mod._flatten_timings(forged)
    assert flat and all("/backend=numba" in k for k in flat)


def test_resolve_backends(bench_mod):
    from repro import kernels

    auto = bench_mod.resolve_backends("auto")
    assert auto[0] == "numpy"
    assert ("numba" in auto) == kernels.numba_available()
    assert bench_mod.resolve_backends("numpy") == ["numpy"]
    # unavailable names are skipped, never silently benchmarked via fallback
    assert bench_mod.resolve_backends("no-such-backend") == ["numpy"]


def test_flatten_suffixes_stream_rows(bench_mod, report):
    flat = bench_mod._flatten_timings(report)
    assert any("/stream:" in k for k in flat)
    mem = bench_mod._flatten_memory(report)
    assert any(k.endswith("/stream") for k in mem)


def test_compare_flags_memory_regression(bench_mod):
    def rep(delta):
        row = {"dataset": "d", "base": "b", "qp": True, "compress_s": 1.0}
        if delta is not None:
            row["peak_rss_delta_mb"] = delta
        return {"results": [row]}

    # +50% growth on a 100 MB delta fails the 15% gate
    assert bench_mod.compare_reports(rep(100.0), rep(150.0)) == 1
    # the same relative move below the ~16 MB noise floor is ignored
    assert bench_mod.compare_reports(rep(10.0), rep(15.0)) == 0
    # shrinking memory is never a regression
    assert bench_mod.compare_reports(rep(150.0), rep(100.0)) == 0
    # a pre-v6 baseline has no memory keys: rows compare as new, exit clean
    assert bench_mod.compare_reports(rep(None), rep(150.0)) == 0
