"""Gateway integration tests: wire schema, admission, drain, loadgen.

Everything here carries the ``service`` marker (``pytest -m service``).
Admission tests drive the token bucket with an injected clock so the
rejections are deterministic; the drain test kills a gateway mid-request
and asserts the crash-safe archive recovers clean (no torn entries); the
loadgen smoke test replays the seeded mix in-process and feeds its v8
report through the bench comparator against the committed v6 baseline.
"""
from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from repro.errors import (
    CorruptBlobError,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    ServiceClosedError,
    ServiceError,
    ServiceRequestError,
    TruncatedStreamError,
    VersionError,
)
from repro.io.container import Archive, is_streamed_container
from repro.service import (
    ArchiveGetRequest,
    ArchivePutRequest,
    CompressRequest,
    DecompressRequest,
    Gateway,
    GatewayConfig,
    JobSpec,
    ServiceClient,
    ServiceReply,
    TenantPolicy,
    decode_message,
    encode_message,
    start_server,
)
from repro.service.admission import AdmissionController, TokenBucket

pytestmark = pytest.mark.service


@pytest.fixture()
def field():
    rng = np.random.default_rng(3)
    return np.cumsum(rng.standard_normal((10, 18, 18)), axis=0).astype(np.float32)


def _run(coro):
    return asyncio.run(coro)


# -- wire schema ---------------------------------------------------------------


def test_message_roundtrip_all_kinds(field):
    spec = JobSpec(error_bound=1e-3, auto=True)
    msgs = [
        CompressRequest.from_array("t", field, spec),
        DecompressRequest(tenant="t", blob=b"\x00\x01"),
        ArchivePutRequest.from_array("t", "e0", field, spec),
        ArchiveGetRequest(tenant="t", name="e0"),
        ServiceReply(request_id="r", op="compress", result=b"abc", meta={"x": 1}),
    ]
    for msg in msgs:
        back = decode_message(encode_message(msg))
        assert type(back) is type(msg)
        assert encode_message(back) == encode_message(msg)


def test_wire_rejections_are_typed(field):
    frame = encode_message(CompressRequest.from_array("t", field))
    with pytest.raises(CorruptBlobError):
        decode_message(b"XXXX" + frame[4:])
    with pytest.raises(TruncatedStreamError):
        decode_message(frame[:-3])
    with pytest.raises(CorruptBlobError):
        decode_message(frame + b"!")
    # schema bump: typed VersionError, never a silent parse
    import struct

    (hlen,) = struct.unpack_from("<I", frame, 4)
    header = json.loads(frame[8:8 + hlen].decode())
    header["schema"] = 99
    hb = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    with pytest.raises(VersionError):
        decode_message(frame[:4] + struct.pack("<I", len(hb)) + hb + frame[8 + hlen:])


def test_jobspec_rejects_unknown_and_invalid_fields():
    with pytest.raises(CorruptBlobError):
        JobSpec.from_dict({"compressor": "sz3", "mystery": 1})
    with pytest.raises(CorruptBlobError):
        JobSpec(error_bound=-1.0)
    with pytest.raises(CorruptBlobError):
        JobSpec(compressor="")
    assert JobSpec().batch_key == JobSpec().batch_key
    assert JobSpec().batch_key != JobSpec(auto=True).batch_key


def test_reply_raise_for_status_maps_reason_to_type():
    reply = ServiceReply(
        request_id="r", op="compress", ok=False, error="quota", message="over"
    )
    with pytest.raises(QuotaExceededError):
        reply.raise_for_status()
    generic = ServiceReply(request_id="r", op="x", ok=False, error="???")
    with pytest.raises(ServiceError):
        generic.raise_for_status()


# -- admission: token bucket, quotas, queue ------------------------------------


def test_token_bucket_deterministic_clock():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=3, clock=lambda: now[0])
    assert [bucket.try_take() for _ in range(3)] == [True, True, True]
    assert not bucket.try_take()
    now[0] += 0.5  # one token refilled
    assert bucket.try_take()
    assert not bucket.try_take()


def test_admission_quota_before_rate():
    now = [0.0]
    ctl = AdmissionController(
        TenantPolicy(rate=1.0, burst=1, max_inflight=1), clock=lambda: now[0]
    )
    ctl.admit("t")
    # inflight full: quota rejection even though the bucket is also empty
    with pytest.raises(QuotaExceededError):
        ctl.admit("t")
    ctl.finished("t")
    with pytest.raises(RateLimitedError):
        ctl.admit("t")  # now the bucket is the binding constraint


def test_two_tenants_quota_rejection_and_counter(field, tmp_path):
    """One tenant exceeds its quota; the other is unaffected; the typed
    rejection increments the dedicated obs counter."""

    async def main():
        cfg = GatewayConfig(
            workers=1,
            policies={"greedy": TenantPolicy(max_inflight=1)},
            default_policy=TenantPolicy(max_inflight=8),
        )
        async with Gateway(cfg) as gw:
            first = asyncio.ensure_future(
                gw.submit(CompressRequest.from_array("greedy", field))
            )
            await asyncio.sleep(0)  # let it admit
            with pytest.raises(QuotaExceededError):
                await gw.submit(CompressRequest.from_array("greedy", field))
            # the polite tenant is not affected by greedy's quota
            ok = await gw.submit(CompressRequest.from_array("polite", field))
            assert ok.ok
            assert (await first).ok
            snap = gw.observation.metrics.snapshot()
            key = "service.rejected{reason=quota,tenant=greedy}"
            assert snap[key]["value"] == 1
            assert not any(
                "tenant=polite" in k for k in snap if "rejected" in k
            )

    _run(main())


def test_queue_full_typed_rejection_and_release(field):
    async def main():
        gw = Gateway(GatewayConfig(workers=1, queue_depth=1))
        # no start(): the dispatcher cannot drain, so depth 1 fills at once
        parked = asyncio.ensure_future(
            gw.submit(CompressRequest.from_array("a", field))
        )
        await asyncio.sleep(0)
        with pytest.raises(QueueFullError):
            await gw.submit(CompressRequest.from_array("b", field))
        snap = gw.observation.metrics.snapshot()
        assert snap["service.rejected{reason=queue_full,tenant=b}"]["value"] == 1
        # the rejected request must not leak an admission slot
        assert gw.admission.inflight("b") == 0
        parked.cancel()
        await gw.stop(drain=False)

    _run(main())


def test_rate_limit_typed_rejection(field):
    async def main():
        cfg = GatewayConfig(
            workers=1,
            default_policy=TenantPolicy(rate=1e-9, burst=1, max_inflight=8),
        )
        async with Gateway(cfg) as gw:
            assert (await gw.submit(CompressRequest.from_array("t", field))).ok
            with pytest.raises(RateLimitedError):
                await gw.submit(CompressRequest.from_array("t", field))
            snap = gw.observation.metrics.snapshot()
            assert (
                snap["service.rejected{reason=rate_limited,tenant=t}"]["value"] == 1
            )

    _run(main())


# -- the serving paths ---------------------------------------------------------


def test_compress_decompress_roundtrip_batched(field):
    async def main():
        async with Gateway(GatewayConfig(workers=2)) as gw:
            spec = JobSpec(error_bound=1e-3)
            replies = await asyncio.gather(*(
                gw.submit(CompressRequest.from_array("t", field, spec))
                for _ in range(6)
            ))
            assert all(r.ok for r in replies)
            # same spec: the dispatcher batches them onto shared pool jobs
            assert gw.stats()["batches"] < 6
            back = await gw.submit(
                DecompressRequest(tenant="t", blob=replies[0].result)
            )
            out = back.array()
            assert out.shape == field.shape
            assert np.abs(out - field).max() <= 1e-3 * 1.0001

    _run(main())


def test_oversized_input_takes_streamed_route(field):
    async def main():
        cfg = GatewayConfig(workers=1, stream_threshold_bytes=field.nbytes)
        async with Gateway(cfg) as gw:
            r = await gw.submit(CompressRequest.from_array("t", field))
            assert r.meta.get("streamed") is True
            assert is_streamed_container(r.result[:8])
            back = await gw.submit(DecompressRequest(tenant="t", blob=r.result))
            assert back.meta.get("streamed") is True
            assert np.abs(back.array() - field).max() <= 1e-3 * 1.0001

    _run(main())


def test_archive_put_get_and_bad_request(field, tmp_path):
    async def main():
        path = str(tmp_path / "svc.rar1")
        async with Gateway(GatewayConfig(workers=1, archive_path=path)) as gw:
            put = await gw.submit(
                ArchivePutRequest.from_array("t", "vol", field)
            )
            assert put.ok
            got = await gw.submit(ArchiveGetRequest(tenant="t", name="vol"))
            from repro.compressors import decompress_any

            assert np.abs(decompress_any(got.result) - field).max() <= 1e-3 * 1.0001
            # duplicate put and missing get are typed bad_request replies
            dup = await gw.submit(
                ArchivePutRequest.from_array("t", "vol", field)
            )
            assert not dup.ok and dup.error == "bad_request"
            missing = await gw.submit(ArchiveGetRequest(tenant="t", name="nope"))
            assert not missing.ok and missing.error == "bad_request"
            with pytest.raises(ServiceRequestError):
                missing.raise_for_status()

    _run(main())


def test_corrupt_payload_is_bad_request_reply(field):
    async def main():
        async with Gateway(GatewayConfig(workers=1)) as gw:
            r = await gw.submit(DecompressRequest(tenant="t", blob=b"garbage"))
            assert not r.ok and r.error == "bad_request"

    _run(main())


def test_wire_geometry_mismatch_is_bad_request_reply(field):
    """A frame whose payload does not match its declared shape/dtype must
    come back as a typed reply, never a raw ValueError out of handle()."""

    async def main():
        async with Gateway(GatewayConfig(workers=1)) as gw:
            bad = CompressRequest(
                tenant="t", spec=JobSpec(), shape=(5, 5), dtype="<f4",
                data=b"\x00" * 7,
            )
            raw = await gw.handle(encode_message(bad))
            reply = decode_message(raw)
            assert isinstance(reply, ServiceReply)
            assert not reply.ok and reply.error == "bad_request"
            # the gateway is still fully serviceable afterwards
            ok = await gw.submit(CompressRequest.from_array("t", field))
            assert ok.ok

    _run(main())


def test_bad_item_does_not_poison_batch(field):
    """One tenant's malformed payload inside a micro-batch fails only that
    request — same-spec batchmates from other tenants still succeed."""

    async def main():
        cfg = GatewayConfig(workers=1, batch_window_ms=100.0)
        async with Gateway(cfg) as gw:
            good = CompressRequest.from_array("acme", field)
            bad = CompressRequest(
                tenant="evil", spec=JobSpec(), shape=field.shape,
                dtype=field.dtype.str, data=field.tobytes()[:-4],
            )
            good_r, bad_r = await asyncio.gather(
                gw.submit(good), gw.submit(bad)
            )
            assert good_r.ok, good_r.message
            assert not bad_r.ok and bad_r.error == "bad_request"
            assert "bytes" in bad_r.message  # the geometry diagnosis

    _run(main())


def test_archive_duplicate_fails_only_offending_job(field, tmp_path):
    """A duplicate archive name in a mixed compress/put group fails that
    job alone; the batchmates' replies are unaffected."""

    async def main():
        path = str(tmp_path / "grp.rar1")
        cfg = GatewayConfig(workers=1, archive_path=path, batch_window_ms=100.0)
        async with Gateway(cfg) as gw:
            assert (
                await gw.submit(ArchivePutRequest.from_array("t", "vol", field))
            ).ok
            dup, comp, other = await asyncio.gather(
                gw.submit(ArchivePutRequest.from_array("t", "vol", field)),
                gw.submit(CompressRequest.from_array("t", field)),
                gw.submit(ArchivePutRequest.from_array("t", "vol2", field)),
            )
            assert not dup.ok and dup.error == "bad_request"
            assert comp.ok, comp.message
            assert other.ok, other.message

    _run(main())


def test_dispatcher_survives_undispatchable_spec(field):
    """A spec whose qp dict cannot be JSON-serialized fails typed instead
    of killing the dispatcher task; later requests still get served."""

    async def main():
        async with Gateway(GatewayConfig(workers=1)) as gw:
            poisoned = JobSpec(qp={"bad": object()})
            r = await gw.submit(
                CompressRequest.from_array("t", field, poisoned)
            )
            assert not r.ok and r.error == "bad_request"
            ok = await gw.submit(CompressRequest.from_array("t", field))
            assert ok.ok

    _run(main())


def test_streamed_route_honors_auto(field):
    async def main():
        cfg = GatewayConfig(workers=1, stream_threshold_bytes=field.nbytes)
        async with Gateway(cfg) as gw:
            spec = JobSpec(error_bound=1e-3, auto=True)
            r = await gw.submit(CompressRequest.from_array("t", field, spec))
            assert r.ok and r.meta.get("streamed") is True
            # the sampling tuner ran on the streamed route too
            names = {s.name for s in gw.observation.tracer.spans}
            assert "autotune" in names
            back = await gw.submit(DecompressRequest(tenant="t", blob=r.result))
            assert np.abs(back.array() - field).max() <= 1e-3 * 1.0001

    _run(main())


def test_handle_internal_error_is_typed_reply(field):
    """Unexpected server-side exceptions become an ok=False reply with the
    reserved 'internal' code — handle() never raises to the transport."""

    async def main():
        async with Gateway(GatewayConfig(workers=1)) as gw:
            async def boom(request):
                raise RuntimeError("wires crossed")

            gw.submit = boom
            raw = await gw.handle(
                encode_message(CompressRequest.from_array("t", field))
            )
            reply = decode_message(raw)
            assert not reply.ok and reply.error == "internal"
            assert "wires crossed" in reply.message
            with pytest.raises(ServiceError):
                reply.raise_for_status()

    _run(main())


def test_drain_no_torn_archive_entries(field, tmp_path):
    """Stop mid-flight: every admitted put completes, the archive recovers
    clean, and post-drain submits fail typed."""

    async def main():
        path = str(tmp_path / "drain.rar1")
        gw = Gateway(GatewayConfig(workers=1, archive_path=path))
        gw.start()
        pending = [
            asyncio.ensure_future(
                gw.submit(ArchivePutRequest.from_array("t", f"e{i}", field))
            )
            for i in range(4)
        ]
        await asyncio.sleep(0)
        await gw.stop()  # drain: admitted work must finish
        replies = await asyncio.gather(*pending)
        assert all(r.ok for r in replies)
        with pytest.raises(ServiceClosedError):
            await gw.submit(CompressRequest.from_array("t", field))
        snap = gw.observation.metrics.snapshot()
        assert snap["service.rejected{reason=closed,tenant=t}"]["value"] == 1
        return path

    path = _run(main())
    archive = Archive(path)
    assert archive.recover() == "clean"
    # archive keys are tenant-namespaced on disk
    assert sorted(archive.names()) == ["t/e0", "t/e1", "t/e2", "t/e3"]
    assert all(archive.verify_all().values())


def test_fork_pool_spans_merge_into_gateway_observation(field):
    async def main():
        async with Gateway(GatewayConfig(workers=1)) as gw:
            await gw.submit(CompressRequest.from_array("t", field))
            names = {s.name for s in gw.observation.tracer.spans}
            # worker-side spans shipped back and merged in the parent
            assert "service.batch.compress" in names
            assert "compress" in names

    _run(main())


# -- TCP transport -------------------------------------------------------------


def test_tcp_roundtrip_and_typed_error(field):
    async def main():
        cfg = GatewayConfig(
            workers=1,
            policies={"limited": TenantPolicy(max_inflight=8, rate=1e-9, burst=1)},
        )
        async with Gateway(cfg) as gw:
            server = await start_server(gw, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with ServiceClient("127.0.0.1", port) as client:
                reply = await client.compress("t", field)
                out = await client.decompress("t", reply.result)
                assert np.abs(out - field).max() <= 1e-3 * 1.0001
                # admission rejection crosses the wire as a typed error
                assert (await client.compress("limited", field)).ok
                with pytest.raises(RateLimitedError):
                    await client.compress("limited", field)
            server.close()
            await server.wait_closed()

    _run(main())


# -- loadgen smoke + bench v8 comparator ---------------------------------------


def test_loadgen_smoke_report_compares_against_v6_baseline(tmp_path, capsys):
    import pathlib
    import sys

    root = pathlib.Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(root / "tools"))
    try:
        import bench
        import loadgen
    finally:
        sys.path.pop(0)

    out = tmp_path / "LOAD.json"
    assert loadgen.main([
        "--smoke", "--seed", "7", "--out", str(out), "--workers", "1",
        "--concurrency", "4",
    ]) == 0
    report = json.loads(out.read_text())
    assert report["schema_version"] == 8
    summary = report["service_summary"]
    assert summary["_total"]["requests"] > 0
    assert summary["_total"]["rejected"] == 0
    for tenant, digest in summary.items():
        assert digest["p50_s"] <= digest["p99_s"] * (1 + 1e-9)
        assert 0.0 <= digest["prefix_ratio"] <= 1.0
    # the smoke mix includes range ops, so some coarse prefixes were served
    assert 0 < summary["_total"]["prefix_bytes"] <= summary["_total"]["full_bytes"]

    # the committed v6 baseline accepts the v8 report: service keys are
    # new, never regressions (v7 baselines likewise — only the latency
    # quantiles are flattened, not the prefix-ratio keys)
    baseline_path = root / "BENCH_pipeline.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        assert bench.compare_reports(baseline, report) == 0
    # v8 self-compare diffs the service keys
    assert bench.compare_reports(report, report) == 0
    capsys.readouterr()  # swallow the comparator tables


def test_loadgen_schedule_is_seeded():
    import pathlib
    import sys

    root = pathlib.Path(__file__).resolve().parents[1]
    sys.path.insert(0, str(root / "tools"))
    try:
        import loadgen
    finally:
        sys.path.pop(0)

    a = loadgen.build_schedule(5, 6, 1, 2)
    b = loadgen.build_schedule(5, 6, 1, 2)
    assert [e["op"] for e in a] == [e["op"] for e in b]
    assert [e["tenant"] for e in a] == [e["tenant"] for e in b]
    assert all(
        np.array_equal(x["data"], y["data"]) for x, y in zip(a, b)
    )
    c = loadgen.build_schedule(6, 6, 1, 2)
    assert [e["tenant"] for e in a] != [e["tenant"] for e in c] or [
        e["op"] for e in a
    ] != [e["op"] for e in c]
