"""Tests for the QP auto-tuner, temporal compression, and the entropy-stage
option in the shared index stream."""
import numpy as np
import pytest

from repro.compressors import SZ3
from repro.compressors.base import decode_index_stream, encode_index_stream
from repro.core import QPConfig
from repro.core.autotune import DEFAULT_CANDIDATES, autotune_qp
from repro.datasets import generate
from repro.temporal import TemporalCompressor


class TestAutotune:
    def test_returns_candidate(self, smooth_field):
        cfg = autotune_qp(smooth_field, 1e-4)
        assert cfg in DEFAULT_CANDIDATES

    def test_picks_qp_on_clustered_data(self):
        data = generate("segsalt", "Pressure2000", shape=(64, 64, 24))
        eb = 1e-4 * float(data.max() - data.min())
        cfg = autotune_qp(data, eb)
        assert cfg.enabled  # clustered indices -> QP on

    def test_tuned_config_not_worse_than_default(self, smooth_field):
        eb = 1e-4
        tuned = autotune_qp(smooth_field, eb)
        s_tuned = len(SZ3(eb, predictor="interp", qp=tuned).compress(smooth_field))
        s_off = len(SZ3(eb, predictor="interp").compress(smooth_field))
        assert s_tuned <= s_off * 1.02

    def test_custom_candidates(self, smooth_field):
        only = (QPConfig.disabled(),)
        assert autotune_qp(smooth_field, 1e-3, candidates=only) == only[0]


class TestTemporal:
    @pytest.fixture(scope="class")
    def movie(self):
        return generate("rtm", shape=(8, 24, 24, 16))

    def test_roundtrip_bound(self, movie):
        eb = 1e-3 * float(movie.max() - movie.min())
        comp = TemporalCompressor("sz3", eb, predictor="interp")
        out = comp.decompress(comp.compress(movie))
        assert out.shape == movie.shape
        assert np.abs(out.astype(np.float64) - movie.astype(np.float64)).max() <= eb * (1 + 1e-9)

    def test_no_error_accumulation(self, movie):
        """Every frame independently satisfies the bound (residuals are
        formed against decoded frames)."""
        eb = 1e-3 * float(movie.max() - movie.min())
        comp = TemporalCompressor("sz3", eb, keyframe_interval=100,
                                  predictor="interp")
        out = comp.decompress(comp.compress(movie))
        for t in range(movie.shape[0]):
            err = np.abs(out[t].astype(np.float64) - movie[t].astype(np.float64)).max()
            assert err <= eb * (1 + 1e-9), t

    def test_temporal_beats_intra_on_slow_motion(self):
        """Consecutive wavefield snapshots are similar: temporal prediction
        must shrink the total size."""
        data = generate("rtm", shape=(10, 28, 28, 18)).astype(np.float32)
        # make motion slow: interpolate intermediate frames
        slow = np.repeat(data[:5], 2, axis=0)
        eb = 1e-3 * float(slow.max() - slow.min())
        temporal = TemporalCompressor("sz3", eb, predictor="interp")
        s_temporal = len(temporal.compress(slow))
        intra = TemporalCompressor("sz3", eb, keyframe_interval=1,
                                   predictor="interp")
        s_intra = len(intra.compress(slow))
        assert s_temporal < s_intra

    def test_keyframes_allow_reset(self, movie):
        eb = 1e-2 * float(movie.max() - movie.min())
        comp = TemporalCompressor("sz3", eb, keyframe_interval=3,
                                  predictor="interp")
        out = comp.decompress(comp.compress(movie))
        assert np.abs(out.astype(np.float64) - movie.astype(np.float64)).max() <= eb * (1 + 1e-9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TemporalCompressor("sz3", 1e-3, keyframe_interval=0)
        comp = TemporalCompressor("sz3", 1e-3)
        with pytest.raises(ValueError):
            comp.compress(np.zeros(5, dtype=np.float32))
        with pytest.raises(ValueError):
            comp.decompress(b"XXXX" + b"\x00" * 16)


class TestEntropyStageOption:
    def test_range_stage_roundtrip(self):
        rng = np.random.default_rng(0)
        v = np.rint(rng.normal(0, 2, 5000)).astype(np.int64)
        blob = encode_index_stream(v, entropy="range")
        assert np.array_equal(decode_index_stream(blob), v)

    def test_huffman_default_unchanged(self):
        v = np.arange(-10, 10)
        blob = encode_index_stream(v)
        assert np.array_equal(decode_index_stream(blob), v)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            encode_index_stream(np.zeros(4, dtype=np.int64), entropy="golomb")

    def test_range_wins_on_sparse(self):
        v = np.zeros(30000, dtype=np.int64)
        v[::37] = 1
        h = encode_index_stream(v, entropy="huffman", backend="raw")
        r = encode_index_stream(v, entropy="range", backend="raw")
        assert len(r) < len(h)
