"""Tests for the parallel transfer pipeline and scaling model (Fig. 18)."""
import numpy as np
import pytest

from repro.core import QPConfig
from repro.datasets import generate
from repro.transfer import (
    LinkConfig,
    PipelineTimes,
    SliceMeasurement,
    compare_strong_scaling,
    gain_vs_bandwidth,
    measure_slices,
    simulate_pipeline,
    vanilla_transfer_seconds,
)


@pytest.fixture(scope="module")
def rtm_slices():
    data = generate("rtm", shape=(6, 40, 40, 24))
    return [np.ascontiguousarray(data[i]) for i in range(data.shape[0])]


@pytest.fixture(scope="module")
def measurements(rtm_slices):
    base = measure_slices(rtm_slices, "sz3", 2e-4, predictor="interp")
    qp = measure_slices(rtm_slices, "sz3", 2e-4, qp=QPConfig(), predictor="interp")
    return base, qp


def test_measure_slices_aggregates(rtm_slices, measurements):
    base, _ = measurements
    assert base.n_slices == len(rtm_slices)
    assert base.raw_bytes == sum(s.nbytes for s in rtm_slices)
    assert 0 < base.compressed_bytes < base.raw_bytes
    assert base.compress_seconds > 0 and base.decompress_seconds > 0
    assert base.cr > 1


def test_qp_reduces_compressed_bytes(measurements):
    base, qp = measurements
    assert qp.compressed_bytes <= base.compressed_bytes


def test_pipeline_stage_times(measurements):
    base, _ = measurements
    times = simulate_pipeline(base, cores=4)
    assert times.total == pytest.approx(
        times.compress + times.write + times.transfer + times.read + times.decompress
    )
    # compute stages shrink with cores; bandwidth stages do not
    times8 = simulate_pipeline(base, cores=8)
    assert times8.compress < times.compress
    assert times8.transfer == times.transfer


def test_pipeline_invalid_cores(measurements):
    with pytest.raises(ValueError):
        simulate_pipeline(measurements[0], cores=0)


def test_scale_to_slices_extrapolates(measurements):
    base, _ = measurements
    t1 = simulate_pipeline(base, cores=4)
    t2 = simulate_pipeline(base, cores=4, scale_to_slices=base.n_slices * 10)
    assert t2.transfer == pytest.approx(10 * t1.transfer)


def _paper_like_measurements():
    """Deterministic measurements shaped like the paper's RTM/SZ3 numbers:
    CR 21.54 vs 25.06, ~20% compression and ~40% decompression overhead."""
    raw = int(635.54e9)
    base = SliceMeasurement(
        n_slices=3600,
        raw_bytes=raw,
        compressed_bytes=int(raw / 21.54),
        compress_seconds=raw / 190e6,  # ~190 MB/s per core
        decompress_seconds=raw / 400e6,
    )
    qp = SliceMeasurement(
        n_slices=3600,
        raw_bytes=raw,
        compressed_bytes=int(raw / 25.06),
        compress_seconds=raw / 150e6,
        decompress_seconds=raw / 280e6,
    )
    return base, qp


def test_strong_scaling_paper_regime():
    """With the paper's own CRs/overheads and link, the model reproduces the
    headline: QP wins end-to-end, and the win grows with core count."""
    base, qp = _paper_like_measurements()
    cmp = compare_strong_scaling(base, qp)
    gains = cmp.gains()
    assert all(b > a - 1e-12 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 1.05  # double-digit end-to-end gain at 1800 cores
    byte_ratio = base.compressed_bytes / qp.compressed_bytes
    assert gains[-1] <= byte_ratio + 1e-9


def test_strong_scaling_measured_integration(measurements):
    """Real measured slices run through the same model without blowing up;
    at high core counts the gain approaches the compressed-byte ratio."""
    base, qp = measurements
    cmp = compare_strong_scaling(base, qp, cores=(225, 10**9), scale_to_slices=3600)
    gains = cmp.gains()
    byte_ratio = base.compressed_bytes / qp.compressed_bytes
    assert gains[-1] == pytest.approx(byte_ratio, rel=1e-3)


def test_gain_shrinks_with_bandwidth():
    """Paper: if the link bandwidth doubles, the expected gain decreases
    (16% -> 11% in their setup)."""
    base, qp = _paper_like_measurements()
    pairs = gain_vs_bandwidth(base, qp, cores=1800)
    _, gains = zip(*pairs)
    assert gains[0] > gains[1] > gains[2]


def test_vanilla_transfer_matches_paper_number():
    # 635.54 GB over 461.75 MB/s ~ 23m29s
    secs = vanilla_transfer_seconds(int(635.54e9))
    assert secs == pytest.approx(23 * 60 + 29, rel=0.05)


def test_parallel_measurement_workers(rtm_slices):
    serial = measure_slices(rtm_slices[:2], "sz3", 1e-3, predictor="interp")
    parallel = measure_slices(rtm_slices[:2], "sz3", 1e-3, workers=2, predictor="interp")
    # identical bytes regardless of the execution mode
    assert serial.compressed_bytes == parallel.compressed_bytes


def test_pipeline_times_row(measurements):
    row = simulate_pipeline(measurements[0], cores=4).row()
    assert set(row) == {"cores", "compress", "write", "transfer", "read",
                        "decompress", "total"}
