"""Static rANS entropy stage: round-trips, wire selection, fault behaviour.

The ANS coder (:mod:`repro.codecs.ans`) registers as a third entropy wire id
next to Huffman and the range coder.  Selection is per-compressor (the
``entropy`` attribute / SZ3 constructor parameter); decode dispatches on the
wire byte, so mixed archives and old blobs keep working unchanged.  The
fault cells hold the decoder to the repo-wide contract: corrupted input
raises a typed error in bounded time, never an untyped crash or a hang.
"""
import numpy as np
import pytest

import repro
from repro.codecs.ans import ANSCodec, DEFAULT_BLOCK_SIZE, PROB_BITS
from repro.compressors import COMPRESSORS, decompress_any, get_compressor
from repro.compressors.sz3 import SZ3
from repro.errors import CorruptBlobError, ReproError, TruncatedStreamError


@pytest.fixture(scope="module")
def field3d():
    return repro.generate("miranda", shape=(18, 16, 14), seed=5)


# -- codec round-trips --------------------------------------------------------


@pytest.mark.parametrize("case", [
    "empty", "single", "constant", "binary", "multiblock", "skewed",
    "block-boundary",
])
def test_roundtrip(case):
    rng = np.random.default_rng(hash(case) % 2**32)
    streams = {
        "empty": np.empty(0, dtype=np.int64),
        "single": np.array([7], dtype=np.int64),
        "constant": np.full(5000, 3, dtype=np.int64),
        "binary": rng.integers(0, 2, size=10000).astype(np.int64),
        "multiblock": rng.integers(0, 200, size=3 * DEFAULT_BLOCK_SIZE + 17),
        "skewed": np.abs(rng.standard_normal(8000) * 3).astype(np.int64),
        "block-boundary": rng.integers(0, 50, size=2 * DEFAULT_BLOCK_SIZE),
    }
    symbols = streams[case].astype(np.int64)
    codec = ANSCodec()
    blob = codec.encode(symbols)
    np.testing.assert_array_equal(codec.decode(blob), symbols)


def test_roundtrip_saturated_alphabet():
    # every slot of the 2**PROB_BITS model used at least once
    symbols = np.arange(1 << PROB_BITS, dtype=np.int64)
    codec = ANSCodec(block_size=1 << 12)
    np.testing.assert_array_equal(codec.decode(codec.encode(symbols)), symbols)


def test_decode_uses_header_block_size():
    rng = np.random.default_rng(0)
    symbols = rng.integers(0, 64, size=9000).astype(np.int64)
    blob = ANSCodec(block_size=512).encode(symbols)
    # decoder instance's own block size must not matter
    np.testing.assert_array_equal(ANSCodec(block_size=4096).decode(blob), symbols)


def test_decode_many_matches_individual():
    rng = np.random.default_rng(1)
    blobs = [
        ANSCodec().encode(rng.integers(0, 30, size=n).astype(np.int64))
        for n in (0, 1, 700, 5000)
    ]
    codec = ANSCodec()
    many = codec.decode_many(blobs)
    for blob, out in zip(blobs, many):
        np.testing.assert_array_equal(out, codec.decode(blob))


def test_negative_symbols_rejected():
    with pytest.raises(ValueError):
        ANSCodec().encode(np.array([-1, 2], dtype=np.int64))


def test_bad_block_size_rejected():
    with pytest.raises(ValueError):
        ANSCodec(block_size=0)
    with pytest.raises(ValueError):
        ANSCodec(block_size=(1 << 16) + 1)


# -- compressor integration ---------------------------------------------------


@pytest.mark.parametrize("name", sorted(COMPRESSORS))
def test_all_compressors_roundtrip_with_ans(name, field3d):
    eb = 1e-3 * float(field3d.max() - field3d.min())
    comp_h = get_compressor(name, eb)
    ref = decompress_any(comp_h.compress(field3d))
    comp_a = get_compressor(name, eb)
    comp_a.entropy = "ans"
    blob = comp_a.compress(field3d)
    # decode dispatch is wire-id driven: decompress_any needs no hints
    out = decompress_any(blob)
    np.testing.assert_array_equal(out, ref)
    assert np.abs(out - field3d).max() <= eb * (1 + 1e-6)


def test_sz3_entropy_constructor_param(field3d):
    eb = 1e-3 * float(field3d.max() - field3d.min())
    comp = SZ3(eb, entropy="ans")
    blob = comp.compress(field3d)
    out = decompress_any(blob)
    assert np.abs(out - field3d).max() <= eb * (1 + 1e-6)


def test_sz3_unknown_entropy_rejected():
    with pytest.raises(Exception):
        SZ3(1e-3, entropy="no-such-coder")


def test_default_entropy_keeps_bytes_frozen(field3d):
    # the attribute's default must be byte-invisible: same blob as before
    eb = 1e-3 * float(field3d.max() - field3d.min())
    assert SZ3(eb).compress(field3d) == SZ3(eb, entropy="huffman").compress(field3d)


# -- pipeline spec ------------------------------------------------------------


def test_ans_registered_as_entropy_stage():
    from repro.pipeline.stages import ANSEncode, ENTROPY_STAGES

    assert ENTROPY_STAGES["ans"] is ANSEncode
    assert ANSEncode.wire_id == 2
    wire_ids = [cls.wire_id for cls in ENTROPY_STAGES.values()]
    assert len(set(wire_ids)) == len(wire_ids)


def test_sz3_ans_spec_header_roundtrip():
    from repro.errors import VersionError
    from repro.pipeline import PipelineSpec, pipeline_spec
    from repro.pipeline.spec import SPEC_HEADER_VERSION

    spec = pipeline_spec("sz3", entropy="ans")
    assert spec.has_stage("ans") and not spec.has_stage("huffman")
    encoded = spec.to_header()
    assert PipelineSpec.from_header(encoded) == spec
    with pytest.raises(VersionError):
        PipelineSpec.from_header(dict(encoded, version=SPEC_HEADER_VERSION + 1))


def test_spec_derived_from_ans_blob(field3d):
    from repro.pipeline.driver import spec_for_blob
    from repro.compressors.base import Blob

    eb = 1e-3 * float(field3d.max() - field3d.min())
    blob = Blob.from_bytes(SZ3(eb, entropy="ans").compress(field3d))
    spec = spec_for_blob(blob.header, blob.sections)
    assert spec.has_stage("ans")


# -- fault injection ----------------------------------------------------------


@pytest.mark.faults
def test_ans_corruption_matrix_typed_and_bounded():
    from repro.testing import run_corruption_matrix

    rng = np.random.default_rng(21)
    symbols = rng.integers(0, 40, size=6000).astype(np.int64)
    blob = ANSCodec().encode(symbols)
    results = run_corruption_matrix(
        blob, ANSCodec().decode, seeds=range(8), deadline_s=10.0
    )
    untyped = [r for r in results if r.outcome == "untyped"]
    assert not untyped, [f"{r.injector}/seed={r.seed}: {r.detail}" for r in untyped]
    assert all(r.elapsed_s <= 10.0 for r in results)


@pytest.mark.faults
def test_ans_truncation_is_typed():
    symbols = np.arange(500, dtype=np.int64) % 37
    blob = ANSCodec().encode(symbols)
    for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
        with pytest.raises((TruncatedStreamError, CorruptBlobError)):
            ANSCodec().decode(blob[:cut])


@pytest.mark.faults
def test_ans_wrong_magic_is_corrupt():
    blob = ANSCodec().encode(np.arange(100, dtype=np.int64))
    with pytest.raises(CorruptBlobError):
        ANSCodec().decode(b"XXXX" + blob[4:])


@pytest.mark.faults
def test_ans_blob_corruption_through_compressor(field3d):
    from repro.testing import run_corruption_matrix

    eb = 1e-3 * float(field3d.max() - field3d.min())
    comp = SZ3(eb, entropy="ans")
    blob = comp.compress(field3d)
    results = run_corruption_matrix(
        blob, decompress_any, seeds=range(4), deadline_s=10.0
    )
    untyped = [r for r in results if r.outcome == "untyped"]
    assert not untyped, [f"{r.injector}/seed={r.seed}: {r.detail}" for r in untyped]
