"""Tests for the transform-based comparators: ZFP, TTHRESH, SPERR."""
import numpy as np
import pytest

from repro.compressors.base import CompressionState
from repro.compressors.sperr import SPERR, cdf97_forward, cdf97_inverse
from repro.compressors.tthresh import TTHRESH
from repro.compressors.zfp import ZFP, _forward_transform, _from_blocks, _inverse_transform, _to_blocks

ALL = [ZFP, TTHRESH, SPERR]


def maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("eb", [1e-2, 1e-4])
def test_roundtrip_bound_smooth(cls, eb, smooth_field):
    c = cls(eb)
    out = c.decompress(c.compress(smooth_field))
    assert out.shape == smooth_field.shape
    assert out.dtype == smooth_field.dtype
    assert maxerr(out, smooth_field) <= eb


@pytest.mark.parametrize("cls", ALL)
def test_roundtrip_layered(cls, layered_field):
    eb = 1e-3
    c = cls(eb)
    out = c.decompress(c.compress(layered_field))
    assert maxerr(out, layered_field) <= eb


@pytest.mark.parametrize("cls", ALL)
def test_roundtrip_2d(cls, field_2d):
    eb = 1e-3
    c = cls(eb)
    out = c.decompress(c.compress(field_2d))
    assert maxerr(out, field_2d) <= eb


@pytest.mark.parametrize("cls", ALL)
def test_float64(cls, smooth_field):
    data = smooth_field.astype(np.float64)
    c = cls(1e-3)
    out = c.decompress(c.compress(data))
    assert out.dtype == np.float64
    assert maxerr(out, data) <= 1e-3


@pytest.mark.parametrize("cls", ALL)
@pytest.mark.parametrize("shape", [(9, 13, 7), (17, 5)])
def test_awkward_shapes(cls, shape):
    rng = np.random.default_rng(1)
    data = np.cumsum(rng.normal(0, 0.1, shape), axis=0).astype(np.float32)
    c = cls(1e-3)
    out = c.decompress(c.compress(data))
    assert out.shape == shape
    assert maxerr(out, data) <= 1e-3


def test_zfp_block_tiling_roundtrip():
    rng = np.random.default_rng(2)
    padded = rng.normal(0, 1, (8, 12, 4))
    blocks = _to_blocks(padded)
    assert blocks.shape == (2 * 3 * 1, 64)
    assert np.array_equal(_from_blocks(blocks, padded.shape), padded)


def test_zfp_transform_energy_compaction():
    # a smooth ramp should concentrate energy in the first coefficient
    ramp = np.arange(64, dtype=np.int64).reshape(1, 64) * 1000
    coeffs = _forward_transform(ramp, 3)
    assert np.abs(coeffs[0, 0]) > np.abs(coeffs[0, 1:]).max()


def test_zfp_transform_near_invertible():
    rng = np.random.default_rng(3)
    v = rng.integers(-(1 << 30), 1 << 30, (5, 64)).astype(np.int64)
    rec = _inverse_transform(_forward_transform(v, 3), 3)
    # the integer lift loses only low-order bits (~2 bits per axis, values 2^30)
    assert np.abs(rec - v).max() <= 32


def test_cdf97_perfect_reconstruction():
    rng = np.random.default_rng(4)
    data = rng.normal(0, 1, (32, 16))
    rec = cdf97_inverse(cdf97_forward(data, 2), 2)
    assert np.allclose(rec, data, atol=1e-10)


def test_cdf97_energy_compaction_on_smooth():
    x = np.linspace(0, 2 * np.pi, 64)
    data = np.sin(np.outer(x, x) / 4)
    coeffs = cdf97_forward(data, 3)
    detail = coeffs[32:, 32:]
    assert np.abs(detail).max() < 0.1 * np.abs(coeffs[:8, :8]).max()


def test_sperr_outliers_enforce_pointwise_bound():
    rng = np.random.default_rng(5)
    data = rng.normal(0, 1, (24, 24)).astype(np.float32)  # noisy: many outliers
    eb = 1e-3
    c = SPERR(eb)
    st = CompressionState()
    blob = c.compress(data, state=st)
    out = c.decompress(blob)
    assert maxerr(out, data) <= eb
    assert st.extras["outliers"] >= 0


def test_sperr_outlier_values_exact(smooth_field):
    """Outlier positions must reproduce the original value exactly."""
    eb = 1e-4
    c = SPERR(eb)
    st = CompressionState()
    blob = c.compress(smooth_field, state=st)
    out = c.decompress(blob)
    assert maxerr(out, smooth_field) <= eb


def test_tthresh_core_sparsity(smooth_field):
    c = TTHRESH(1e-2)
    st = CompressionState()
    c.compress(smooth_field, state=st)
    # a smooth field has a very sparse Tucker core
    assert st.extras["core_nonzero"] < smooth_field.size * 0.05


def test_tthresh_tiny_1d():
    data = np.sin(np.linspace(0, 6, 40)).astype(np.float32)
    c = TTHRESH(1e-3)
    out = c.decompress(c.compress(data))
    assert maxerr(out, data) <= 1e-3


def test_comparator_profile(smooth_field):
    """Table IV shape: SPERR/TTHRESH lead CR; ZFP overshoots quality."""
    eb = 1e-3
    sizes = {cls.name: len(cls(eb).compress(smooth_field)) for cls in ALL}
    assert sizes["sperr"] < sizes["zfp"]
    assert sizes["tthresh"] < sizes["zfp"]
    zfp_out = ZFP(eb).decompress(ZFP(eb).compress(smooth_field))
    # ZFP's truncation is conservative: achieved error well below the bound
    assert maxerr(zfp_out, smooth_field) < eb
