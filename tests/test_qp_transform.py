"""Tests for the QP transform — above all the reversibility invariant
``qp_inverse(qp_forward(Q)) == Q`` for every configuration (the paper's
guarantee that QP never changes decompressed data)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import QP_CONDITIONS, QP_DIMENSIONS, QPConfig, qp_forward, qp_inverse

SENTINEL = -32


def sample_indices(shape, seed=0, sentinel_frac=0.05):
    rng = np.random.default_rng(seed)
    q = np.rint(rng.normal(0, 3, shape)).astype(np.int64)
    mask = rng.random(shape) < sentinel_frac
    q[mask] = SENTINEL
    return q


@pytest.mark.parametrize("dimension", QP_DIMENSIONS)
@pytest.mark.parametrize("condition", QP_CONDITIONS)
def test_roundtrip_3d(dimension, condition):
    q = sample_indices((6, 7, 8))
    cfg = QPConfig(dimension=dimension, condition=condition, max_level=2)
    qp = qp_forward(q, SENTINEL, cfg, level=1)
    back = qp_inverse(qp, SENTINEL, cfg, level=1)
    assert np.array_equal(back, q)


@pytest.mark.parametrize("dimension", QP_DIMENSIONS)
@pytest.mark.parametrize("condition", QP_CONDITIONS)
def test_roundtrip_2d_pass(dimension, condition):
    q = sample_indices((9, 11), seed=1)
    cfg = QPConfig(dimension=dimension, condition=condition)
    qp = qp_forward(q, SENTINEL, cfg, level=2)
    assert np.array_equal(qp_inverse(qp, SENTINEL, cfg, level=2), q)


@pytest.mark.parametrize("dimension", QP_DIMENSIONS)
def test_roundtrip_1d_pass(dimension):
    q = sample_indices((40,), seed=2)
    cfg = QPConfig(dimension=dimension)
    qp = qp_forward(q, SENTINEL, cfg, level=1)
    assert np.array_equal(qp_inverse(qp, SENTINEL, cfg, level=1), q)


def test_roundtrip_4d_pass():
    q = sample_indices((3, 4, 5, 6), seed=3)
    cfg = QPConfig(dimension="2d", condition="III")
    qp = qp_forward(q, SENTINEL, cfg, level=1)
    assert np.array_equal(qp_inverse(qp, SENTINEL, cfg, level=1), q)


def test_level_gating():
    q = sample_indices((5, 5, 5), seed=4)
    cfg = QPConfig(max_level=2)
    assert qp_forward(q, SENTINEL, cfg, level=3) is q  # identity above max_level
    assert qp_forward(q, SENTINEL, cfg, level=2) is not q


def test_disabled_config_is_identity():
    q = sample_indices((5, 5, 5), seed=5)
    cfg = QPConfig.disabled()
    assert qp_forward(q, SENTINEL, cfg, level=1) is q
    assert qp_inverse(q, SENTINEL, cfg, level=1) is q


def test_entropy_reduction_on_clustered_indices():
    """QP must reduce entropy on the clustered patterns it targets."""
    from repro.core import shannon_entropy

    rng = np.random.default_rng(6)
    # smooth positive field -> neighbouring indices share sign and magnitude
    base = np.cumsum(rng.normal(0.5, 0.2, (20, 40, 40)), axis=1)
    q = np.rint(base).astype(np.int64) + 1
    cfg = QPConfig(dimension="2d", condition="III")
    qp = qp_forward(q, SENTINEL, cfg, level=1)
    assert shannon_entropy(qp) < shannon_entropy(q)
    assert np.array_equal(qp_inverse(qp, SENTINEL, cfg, level=1), q)


def test_case3_skips_sign_disagreement():
    q = np.array([[[1, 1], [1, 1]]], dtype=np.int64)  # all positive
    q2 = np.array([[[1, -1], [1, 1]]], dtype=np.int64)  # left/top disagree at (1,1)
    cfg = QPConfig(dimension="2d", condition="III")
    # uniform positive plane: interior point predicted exactly -> Q' = 0 there
    out = qp_forward(q, SENTINEL, cfg, level=1)
    assert out[0, 1, 1] == 0
    # mixed signs: no prediction anywhere
    out2 = qp_forward(q2, SENTINEL, cfg, level=1)
    assert np.array_equal(out2, q2)


def test_case2_skips_unpredictable_neighbours():
    q = np.array([[[5, 5], [5, 5]]], dtype=np.int64)
    q[0, 0, 0] = SENTINEL
    cfg = QPConfig(dimension="2d", condition="II")
    out = qp_forward(q, SENTINEL, cfg, level=1)
    # (1,1) involves the sentinel at (0,0) -> skipped
    assert out[0, 1, 1] == q[0, 1, 1]


def test_case1_predicts_through_sentinels():
    q = np.array([[[5, 5], [5, 5]]], dtype=np.int64)
    q[0, 0, 0] = SENTINEL
    cfg = QPConfig(dimension="2d", condition="I")
    out = qp_forward(q, SENTINEL, cfg, level=1)
    # c = 5 + 5 - SENTINEL  -> Q' = 5 - (10 - SENTINEL)
    assert out[0, 1, 1] == 5 - (10 - SENTINEL)
    assert np.array_equal(qp_inverse(out, SENTINEL, cfg, level=1), q)


def test_case4_more_conservative_than_case3():
    q = sample_indices((8, 16, 16), seed=7, sentinel_frac=0.0)
    c3 = QPConfig(dimension="2d", condition="III")
    c4 = QPConfig(dimension="2d", condition="IV")
    n3 = int((qp_forward(q, SENTINEL, c3, 1) != q).sum())
    n4 = int((qp_forward(q, SENTINEL, c4, 1) != q).sum())
    assert n4 <= n3


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        QPConfig(dimension="4d")
    with pytest.raises(ValueError):
        QPConfig(condition="V")
    with pytest.raises(ValueError):
        QPConfig(max_level=-1)


def test_config_dict_roundtrip():
    cfg = QPConfig(dimension="3d", condition="II", max_level=3, enabled=False)
    assert QPConfig.from_dict(cfg.to_dict()) == cfg


@given(
    hnp.arrays(np.int64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=10),
               elements=st.integers(-31, 31)),
    st.sampled_from(QP_DIMENSIONS),
    st.sampled_from(QP_CONDITIONS),
    st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_property_reversibility(q, dimension, condition, with_sentinels):
    if with_sentinels:
        q = q.copy()
        q[q == -31] = SENTINEL
    cfg = QPConfig(dimension=dimension, condition=condition)
    qp = qp_forward(q, SENTINEL, cfg, level=1)
    assert np.array_equal(qp_inverse(qp, SENTINEL, cfg, level=1), q)
