"""Property-based roundtrip tests over dtype × shape × eb × compressor × QP.

Two properties lock in the compression contract across the whole registry:

1. **error bound** — ``decompress(compress(x))`` stays within the absolute
   error bound for every generated input;
2. **determinism + integrity** — compressing the same array twice yields
   identical bytes, and the sealed (checksum=True) blob decodes to exactly
   the same values as the plain one.

When Hypothesis is importable the inputs are drawn adaptively; otherwise a
seeded-random sweep covers the same axes so the suite never silently loses
coverage on a minimal toolchain.
"""
import numpy as np
import pytest

from repro.compressors import (
    INTERP_COMPRESSORS,
    decompress_any,
    get_compressor,
    supports_qp,
)
from repro.core.config import QPConfig
from repro.io import integrity

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - minimal toolchain fallback
    HAVE_HYPOTHESIS = False

ALL_COMPRESSORS = ("mgard", "sz3", "qoz", "hpez", "zfp", "tthresh", "sperr")
SHAPES = [(97,), (13, 11), (24,), (7, 6, 5), (4, 9, 8)]
ERROR_BOUNDS = [1e-1, 1e-2, 1e-3]
DTYPES = [np.float32, np.float64]


def _make_data(shape, dtype, seed):
    rng = np.random.default_rng(seed)
    # smooth field + noise: exercises both the predictor and the escapes
    coords = np.meshgrid(*(np.linspace(0, 3, s) for s in shape), indexing="ij")
    smooth = sum(np.sin(c) for c in coords)
    noise = 0.1 * rng.standard_normal(shape)
    return (smooth + noise).astype(dtype)


def _comp_kwargs(name, qp_on):
    if qp_on and supports_qp(name):
        return {"qp": QPConfig()}
    if name in INTERP_COMPRESSORS or name == "sperr":
        return {"qp": QPConfig.disabled()}
    return {}


def _check_roundtrip(name, shape, dtype, eb, qp_on, seed):
    data = _make_data(shape, dtype, seed)
    comp = get_compressor(name, eb, **_comp_kwargs(name, qp_on))
    blob = comp.compress(data)
    out = comp.decompress(blob)
    assert out.shape == data.shape
    err = np.abs(out.astype(np.float64) - data.astype(np.float64)).max()
    assert err <= eb * (1 + 1e-6), f"{name} eb={eb}: max err {err}"
    # determinism: same input, same bytes
    assert comp.compress(data) == blob
    # sealed blob: envelope wraps the identical payload and decodes the same
    sealed = comp.compress(data, checksum=True)
    assert integrity.unseal(sealed) == blob
    assert np.array_equal(decompress_any(sealed), out)


if HAVE_HYPOTHESIS:

    @given(
        name=st.sampled_from(ALL_COMPRESSORS),
        shape=st.sampled_from(SHAPES),
        dtype=st.sampled_from(DTYPES),
        eb=st.sampled_from(ERROR_BOUNDS),
        qp_on=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(name, shape, dtype, eb, qp_on, seed):
        _check_roundtrip(name, shape, dtype, eb, qp_on, seed)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("case", range(30))
    def test_roundtrip_property(case):
        rng = np.random.default_rng(case)
        name = ALL_COMPRESSORS[int(rng.integers(len(ALL_COMPRESSORS)))]
        shape = SHAPES[int(rng.integers(len(SHAPES)))]
        dtype = DTYPES[int(rng.integers(len(DTYPES)))]
        eb = ERROR_BOUNDS[int(rng.integers(len(ERROR_BOUNDS)))]
        _check_roundtrip(
            name, shape, dtype, eb, bool(rng.integers(2)), int(rng.integers(2**16))
        )


@pytest.mark.parametrize("name", INTERP_COMPRESSORS)
def test_qp_roundtrip_all_interp(name):
    """QP on/off both honor the bound on the same input (fixed seed)."""
    data = _make_data((11, 10, 9), np.float32, seed=7)
    for qp in (QPConfig(), QPConfig.disabled()):
        comp = get_compressor(name, 1e-2, qp=qp)
        out = comp.decompress(comp.compress(data))
        assert np.abs(out - data).max() <= 1e-2 * (1 + 1e-6)
