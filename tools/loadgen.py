#!/usr/bin/env python
"""Mixed-traffic load generator for the compression gateway.

Replays a *seeded* request mix against a live gateway — many small
compress/decompress slices, a few huge volumes that exercise the
streamed route, a sprinkle of archive put/get, and a progressive
range-request class (put a ``sz3_progressive`` entry, fetch its
coarsest-level prefix, sometimes refine to full) — from several
tenants concurrently, then reports per-tenant latency quantiles and
throughput.

The replay is deterministic: one ``numpy`` generator seeds the request
schedule (sizes, tenants, op mix, interleaving), so two runs with the
same ``--seed`` issue byte-identical traffic and the latency digest is
comparable run over run.  The output is a bench **schema v8** report
carrying a ``service_summary`` block
(``{tenant: {p50_s, p99_s, throughput_mb_s, requests, rejected,
prefix_bytes, full_bytes, prefix_ratio}}``) that
``tools/bench.py --compare`` diffs against any baseline — the compare
flattens only the latency quantiles, so v7 baselines (no range class,
no prefix keys) and v6 baselines (no service keys at all) both stay
green across the schema bump.  ``prefix_ratio`` is range bytes
actually served over the full size of the entries targeted: 1.0 when
every fetch refined to full, well below that when coarse previews
were enough.

By default the gateway runs in-process (fork pool and all), so the tool
doubles as an end-to-end integration check; ``--connect HOST:PORT``
replays the same schedule against a remote ``repro serve`` instance
over TCP instead.

Usage::

    PYTHONPATH=src python tools/loadgen.py --smoke          # seconds
    PYTHONPATH=src python tools/loadgen.py --out LOAD.json
    PYTHONPATH=src python tools/loadgen.py --connect 127.0.0.1:9753
    PYTHONPATH=src python tools/bench.py --compare BENCH_pipeline.json LOAD.json
"""
from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any

import numpy as np

sys.path.insert(0, "src")

from repro.errors import ServiceError  # noqa: E402
from repro.service import (  # noqa: E402
    ArchiveGetRequest,
    ArchivePutRequest,
    CompressRequest,
    DecompressRequest,
    Gateway,
    GatewayConfig,
    JobSpec,
    RangeGetRequest,
    ServiceClient,
    TenantPolicy,
)
from repro.utils.levels import num_levels  # noqa: E402

SCHEMA_VERSION = 8

TENANTS = ("alice", "bob", "carol")

#: small-slice geometry (f32): the bread-and-butter request
SMALL_SHAPE = (12, 16, 16)
#: huge-volume geometry (f32): crosses the streamed-route threshold
BIG_SHAPE = (48, 72, 72)
#: the gateway threshold the big volumes must cross (in-process mode)
STREAM_THRESHOLD = 1 << 20


def _field(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """A smooth, compressible field — cumulative sum of white noise."""
    return np.cumsum(
        rng.standard_normal(shape, dtype=np.float32), axis=0
    )


def build_schedule(
    seed: int, small: int, big: int, archive: int, ranges: int = 0
) -> list[dict[str, Any]]:
    """The deterministic request schedule: one dict per request.

    Ops: ``compress-small``, ``compress-big`` (streamed), ``decompress``
    (round-trips a previous compress result), ``archive-put`` /
    ``archive-get``, and ``range`` (archive a progressive entry, fetch
    its coarsest-level prefix, refine every second one to full).
    Tenants are drawn round-robin-ish from the seeded generator so
    every tenant sees every op class.
    """
    rng = np.random.default_rng(seed)
    plan: list[dict[str, Any]] = []
    for i in range(small):
        plan.append({
            "op": "compress-small",
            "tenant": TENANTS[int(rng.integers(len(TENANTS)))],
            "data": _field(rng, SMALL_SHAPE),
            "decompress_after": bool(rng.random() < 0.5),
        })
    for i in range(big):
        plan.append({
            "op": "compress-big",
            "tenant": TENANTS[int(rng.integers(len(TENANTS)))],
            "data": _field(rng, BIG_SHAPE),
            "decompress_after": False,
        })
    for i in range(archive):
        plan.append({
            "op": "archive",
            "tenant": TENANTS[int(rng.integers(len(TENANTS)))],
            "name": f"entry{i:03d}",
            "data": _field(rng, SMALL_SHAPE),
        })
    for i in range(ranges):
        plan.append({
            "op": "range",
            "tenant": TENANTS[int(rng.integers(len(TENANTS)))],
            "name": f"prog{i:03d}",
            "data": _field(rng, SMALL_SHAPE),
            # alternate, not a coin: any mix with >= 2 range ops exercises
            # both the coarse-preview-only and the refine-to-full paths
            "refine": i % 2 == 1,
        })
    order = rng.permutation(len(plan))
    return [plan[int(i)] for i in order]


class _Recorder:
    """Per-tenant latency samples + byte counters."""

    def __init__(self) -> None:
        self.latencies: dict[str, list[float]] = {}
        self.bytes_in: dict[str, int] = {}
        self.rejected: dict[str, int] = {}
        self.prefix_bytes: dict[str, int] = {}
        self.full_bytes: dict[str, int] = {}

    def ok(self, tenant: str, seconds: float, nbytes: int) -> None:
        self.latencies.setdefault(tenant, []).append(seconds)
        self.bytes_in[tenant] = self.bytes_in.get(tenant, 0) + nbytes

    def reject(self, tenant: str) -> None:
        self.rejected[tenant] = self.rejected.get(tenant, 0) + 1

    def range_bytes(self, tenant: str, served: int, full: int) -> None:
        """One range fetch: ``served`` bytes delivered of a ``full``-byte
        entry.  ``full`` is charged once per entry (refinements pass 0)."""
        self.prefix_bytes[tenant] = self.prefix_bytes.get(tenant, 0) + served
        self.full_bytes[tenant] = self.full_bytes.get(tenant, 0) + full

    def summary(self, wall_s: float) -> dict[str, Any]:
        out: dict[str, Any] = {}
        all_lat: list[float] = []
        total_bytes = 0
        total_rej = 0
        total_prefix = 0
        total_full = 0
        for tenant in sorted(set(self.latencies) | set(self.rejected)):
            lats = np.asarray(self.latencies.get(tenant, [0.0]))
            nbytes = self.bytes_in.get(tenant, 0)
            rej = self.rejected.get(tenant, 0)
            prefix = self.prefix_bytes.get(tenant, 0)
            full = self.full_bytes.get(tenant, 0)
            out[tenant] = {
                "requests": int(len(self.latencies.get(tenant, []))),
                "rejected": rej,
                "p50_s": float(np.percentile(lats, 50)),
                "p99_s": float(np.percentile(lats, 99)),
                "throughput_mb_s": (
                    nbytes / (1 << 20) / wall_s if wall_s > 0 else 0.0
                ),
                "prefix_bytes": prefix,
                "full_bytes": full,
                "prefix_ratio": prefix / full if full else 1.0,
            }
            all_lat.extend(self.latencies.get(tenant, []))
            total_bytes += nbytes
            total_rej += rej
            total_prefix += prefix
            total_full += full
        lats = np.asarray(all_lat or [0.0])
        out["_total"] = {
            "requests": len(all_lat),
            "rejected": total_rej,
            "p50_s": float(np.percentile(lats, 50)),
            "p99_s": float(np.percentile(lats, 99)),
            "throughput_mb_s": (
                total_bytes / (1 << 20) / wall_s if wall_s > 0 else 0.0
            ),
            "prefix_bytes": total_prefix,
            "full_bytes": total_full,
            "prefix_ratio": total_prefix / total_full if total_full else 1.0,
        }
        return out


async def _drive(submit, plan: list[dict[str, Any]], concurrency: int) -> _Recorder:
    """Replay the schedule through ``submit`` with bounded client concurrency.

    ``submit(request)`` awaits one typed request and returns its reply
    (in-process gateway or TCP client — same coroutine shape).  Each
    schedule entry may expand to a follow-up request (decompress the
    blob just produced, read back the archive entry), which stays inside
    the same slot so the dependency ordering holds.
    """
    rec = _Recorder()
    sem = asyncio.Semaphore(concurrency)
    spec = JobSpec(compressor="sz3", error_bound=1e-3)
    prog_spec = JobSpec(compressor="sz3_progressive", error_bound=1e-3)
    # the coarsest interpolation level is a pure function of the geometry,
    # so the client can ask for it without having seen the blob
    coarsest = num_levels(SMALL_SHAPE)

    async def _timed(req) -> Any:
        t0 = time.monotonic()
        try:
            reply = await submit(req)
        except ServiceError:
            rec.reject(req.tenant)
            return None
        rec.ok(req.tenant, time.monotonic() - t0, len(req.payload))
        return reply

    async def _one(entry: dict[str, Any]) -> None:
        async with sem:
            tenant = entry["tenant"]
            if entry["op"] == "range":
                put = ArchivePutRequest.from_array(
                    tenant, entry["name"], entry["data"], prog_spec
                )
                if await _timed(put) is None:
                    return
                coarse = await _timed(RangeGetRequest(
                    tenant=tenant, name=entry["name"], level=coarsest
                ))
                if coarse is None:
                    return
                rec.range_bytes(
                    tenant, len(coarse.result), int(coarse.meta["total_bytes"])
                )
                if entry["refine"]:
                    rest = await _timed(RangeGetRequest(
                        tenant=tenant, name=entry["name"],
                        start=len(coarse.result),
                    ))
                    if rest is not None:
                        rec.range_bytes(tenant, len(rest.result), 0)
                return
            if entry["op"] == "archive":
                put = ArchivePutRequest.from_array(
                    tenant, entry["name"], entry["data"], spec
                )
                if await _timed(put) is not None:
                    await _timed(ArchiveGetRequest(tenant=tenant, name=entry["name"]))
                return
            req = CompressRequest.from_array(tenant, entry["data"], spec)
            reply = await _timed(req)
            if reply is not None and entry.get("decompress_after"):
                await _timed(DecompressRequest(tenant=tenant, blob=reply.result))

    await asyncio.gather(*(_one(e) for e in plan))
    return rec


async def _run_inprocess(args, plan) -> tuple[_Recorder, float, dict]:
    import os
    import tempfile

    archive_path = args.archive or os.path.join(
        tempfile.mkdtemp(prefix="loadgen-"), "loadgen.rar1"
    )
    config = GatewayConfig(
        workers=args.workers,
        stream_threshold_bytes=STREAM_THRESHOLD,
        archive_path=archive_path,
        default_policy=TenantPolicy(
            rate=float("inf"), burst=4096, max_inflight=max(64, args.concurrency)
        ),
    )
    async with Gateway(config) as gateway:
        t0 = time.monotonic()
        rec = await _drive(gateway.submit, plan, args.concurrency)
        wall = time.monotonic() - t0
        stats = gateway.stats()
    return rec, wall, stats


async def _run_tcp(args, plan) -> tuple[_Recorder, float, dict]:
    host, _, port = args.connect.rpartition(":")
    clients = [
        await ServiceClient(host or "127.0.0.1", int(port)).connect()
        for _ in range(args.concurrency)
    ]
    free: asyncio.Queue = asyncio.Queue()
    for c in clients:
        free.put_nowait(c)

    async def submit(req):
        client = await free.get()
        try:
            return await client.request(req)
        finally:
            free.put_nowait(client)

    try:
        t0 = time.monotonic()
        rec = await _drive(submit, plan, args.concurrency)
        wall = time.monotonic() - t0
    finally:
        for c in clients:
            await c.close()
    return rec, wall, {}


def run(args) -> dict[str, Any]:
    if args.smoke:
        small, big, archive, ranges = 18, 2, 3, 3
    else:
        small, big, archive, ranges = (
            args.small, args.big, args.archive_ops, args.range_ops
        )
    plan = build_schedule(args.seed, small, big, archive, ranges)
    if args.connect:
        rec, wall, stats = asyncio.run(_run_tcp(args, plan))
    else:
        rec, wall, stats = asyncio.run(_run_inprocess(args, plan))
    summary = rec.summary(wall)
    report = {
        "schema_version": SCHEMA_VERSION,
        "kind": "service-loadgen",
        "seed": args.seed,
        "plan": {"small": small, "big": big, "archive": archive,
                 "range": ranges},
        "wall_s": wall,
        "gateway": stats,
        "service_summary": summary,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="seeded mixed-traffic replay against the compression gateway"
    )
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny deterministic mix (seconds); the tier-1 gate")
    ap.add_argument("--small", type=int, default=96,
                    help="small compress slices in the mix")
    ap.add_argument("--big", type=int, default=4,
                    help="huge volumes (streamed route) in the mix")
    ap.add_argument("--archive-ops", type=int, default=12,
                    help="archive put(+get) pairs in the mix")
    ap.add_argument("--range-ops", type=int, default=8,
                    help="progressive put + range-get (± refine) triples "
                         "in the mix")
    ap.add_argument("--concurrency", type=int, default=8,
                    help="concurrent client slots")
    ap.add_argument("--workers", type=int, default=2,
                    help="gateway fork-pool workers (in-process mode)")
    ap.add_argument("--archive", default=None,
                    help="archive path (in-process mode; default: temp dir)")
    ap.add_argument("--connect", default=None, metavar="HOST:PORT",
                    help="replay against a remote gateway over TCP instead "
                         "of the in-process one")
    ap.add_argument("--out", default=None, help="write the v8 report JSON here")
    args = ap.parse_args(argv)

    report = run(args)
    summary = report["service_summary"]
    print(f"{'tenant':<8s} {'reqs':>6s} {'rej':>5s} {'p50(ms)':>9s} "
          f"{'p99(ms)':>9s} {'MB/s':>8s} {'pfx%':>6s}")
    for tenant, d in summary.items():
        print(f"{tenant:<8s} {d['requests']:6d} {d['rejected']:5d} "
              f"{d['p50_s'] * 1e3:9.2f} {d['p99_s'] * 1e3:9.2f} "
              f"{d['throughput_mb_s']:8.2f} {d['prefix_ratio'] * 100:6.1f}")
    print(f"replayed {summary['_total']['requests']} requests in "
          f"{report['wall_s']:.2f}s (seed {report['seed']})")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
