#!/usr/bin/env python
"""Seeded fuzz smoke test: hammer every decode path with corrupted bytes.

Runs for a fixed time budget (default 30 s), cycling through compressors,
codecs, and the archive reader with the four seeded injectors from
:mod:`repro.testing.faults`.  Every decode must either succeed with
well-formed output or raise a typed :class:`repro.errors.ReproError` —
an untyped exception or a per-decode deadline overrun is a violation and
makes the script exit nonzero, printing the (target, injector, seed) triple
so the failure replays exactly.

Usage::

    PYTHONPATH=src python tools/fuzz_smoke.py [--seconds 30] [--seed 0]
"""
from __future__ import annotations

import argparse
import itertools
import sys
import time

import numpy as np

from repro.codecs import fixed as fixed_codec
from repro.codecs import lossless
from repro.compressors import decompress_any, get_compressor, supports_qp
from repro.core.config import AdaptiveConfig, QPConfig
from repro.errors import ReproError
from repro.pipeline.stages import ENTROPY_STAGES, StageContext
from repro.testing import INJECTORS

DEADLINE_S = 10.0


def _build_targets(seed: int):
    """(label, pristine bytes, decode callable) for every decode path."""
    rng = np.random.default_rng(seed)
    shape = (12, 11, 10)
    coords = np.meshgrid(*(np.linspace(0, 3, s) for s in shape), indexing="ij")
    data = (sum(np.sin(c) for c in coords)
            + 0.1 * rng.standard_normal(shape)).astype(np.float32)
    targets = []
    for name in ("mgard", "sz3", "qoz", "hpez", "zfp", "tthresh", "sperr"):
        kwargs = {"qp": QPConfig()} if supports_qp(name) else {}
        comp = get_compressor(name, 1e-2, **kwargs)
        for sealed in (False, True):
            blob = comp.compress(data, checksum=sealed)
            label = f"{name}{'+crc' if sealed else ''}"
            targets.append((label, blob, decompress_any))
    # adaptive-quantize spec variant: the reserved-index wire format plus
    # its header block ("adaptive": {bits, threshold}) are extra decode
    # surface, so every engine compressor gets a fuzzed adaptive blob too
    for name in ("mgard", "sz3", "qoz", "hpez"):
        comp = get_compressor(
            name, 1e-2, qp=QPConfig(),
            adaptive=AdaptiveConfig(bits=2, threshold=3),
        )
        blob = comp.compress(data)
        targets.append((f"{name}+adaptive", blob, decompress_any))
    # streamed slab container: the offset-framed wire format (header,
    # segment table, CRC-guarded index/footer) is its own decode surface
    import io

    from repro.streaming import stream_decompress

    for name in ("sz3", "mgard"):
        comp = get_compressor(name, 1e-2, qp=QPConfig())
        sink = io.BytesIO()
        slab_bytes = (data.shape[0] // 3) * data[0].nbytes
        comp.compress_stream(data, sink, slab_bytes=slab_bytes)
        targets.append((f"stream[{name}]", sink.getvalue(), stream_decompress))
    symbols = rng.integers(0, 40, size=3000).astype(np.int64)
    # every registered entropy stage, enumerated from the pipeline registry
    # so new wire formats (e.g. ans) are fuzzed without touching this list
    for ename, cls in sorted(ENTROPY_STAGES.items()):
        blob = cls().forward(StageContext(), symbols)

        def decode(payload, _cls=cls):
            return _cls().inverse(StageContext(), payload)

        targets.append((f"entropy-{ename}", blob, decode))
    targets.append(
        ("fixed", fixed_codec.encode_fixed(symbols.astype(np.uint64)),
         fixed_codec.decode_fixed)
    )
    payload = (b"abcd" * 500
               + rng.integers(0, 256, 500, dtype=np.uint8).tobytes())
    for backend in ("zlib", "rle", "lz77", "raw"):
        targets.append(
            (f"lossless-{backend}", lossless.compress(payload, backend),
             lossless.decompress)
        )
    return targets


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seconds", type=float, default=30.0)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    targets = _build_targets(args.seed)
    violations = []
    cells = 0
    t_end = time.monotonic() + args.seconds
    for round_no in itertools.count():
        if time.monotonic() >= t_end:
            break
        for label, pristine, decode in targets:
            for kind, fn in INJECTORS.items():
                if time.monotonic() >= t_end:
                    break
                seed = args.seed + 1000 * round_no + cells
                corrupted = fn(pristine, seed=seed)
                if corrupted == pristine:
                    continue
                cells += 1
                t0 = time.perf_counter()
                try:
                    decode(corrupted)
                except ReproError:
                    pass  # the contract
                except Exception as exc:  # noqa: BLE001 - violation report
                    violations.append(
                        (label, kind, seed, f"{type(exc).__name__}: {exc}")
                    )
                elapsed = time.perf_counter() - t0
                if elapsed > DEADLINE_S:
                    violations.append(
                        (label, kind, seed, f"deadline: {elapsed:.1f}s")
                    )
    print(f"fuzz smoke: {cells} corrupted decodes across "
          f"{len(targets)} targets, {len(violations)} violations")
    for label, kind, seed, detail in violations:
        print(f"  VIOLATION {label} {kind} seed={seed}: {detail}")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
