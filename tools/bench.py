#!/usr/bin/env python
"""Per-stage pipeline benchmark: the repo's performance regression baseline.

Runs the synthetic datasets through the four interpolation-based compressors
(SZ3/QoZ/HPEZ/MGARD) with QP on and off, measures end-to-end compression and
decompression throughput plus per-stage wall-clock and byte counters, and
writes everything to ``BENCH_pipeline.json``.

Schema v3: stage timings come from the :mod:`repro.obs` tracer (the single
timing source of truth), so the ``stages`` maps now also carry nested span
names (``compress``/``decompress`` roots, ``parallel.*`` fan-out,
``qp.forward``/``qp.inverse`` kernels) alongside the classic
predict/quantize/qp/huffman/lossless keys.  The per-row shape is unchanged
from v2, so ``--compare`` accepts a v2 baseline against a v3 run — span-only
keys new in v3 show up as ``new`` and are never counted as regressions.

Schema v4: the matrix is additionally run once per kernel backend
(``--backends``, default: numpy plus numba when importable).  Each row
records the requested ``kernel_backend`` and the resolved per-stage
``kernel_backends`` map from :func:`repro.kernels.active_backends`.  Flat
metric keys stay unsuffixed for the numpy rows and gain ``/backend=<name>``
otherwise, so ``--compare`` still accepts a v3 baseline: compiled-backend
keys show up as ``new`` and are never counted as regressions.

Schema v5: each base additionally gets one ``auto`` row per dataset — the
compressor is replaced by its sampling-tuned copy (``_tuned_for``) before
timing, and the row records the full tuner decision (``tuning``, the
``TuningDecision.to_dict()`` payload) plus the measured
``adaptive_fraction`` (share of points coded through reserved adaptive
indices).  Flat metric keys for these rows gain an ``/auto`` suffix, so
``--compare`` still accepts a v4 baseline: auto keys show up as ``new``
and are never counted as regressions.

Every future performance PR reruns this harness and compares against the
committed JSON, so regressions in any stage are visible immediately.

Usage::

    PYTHONPATH=src python tools/bench.py                  # full run
    PYTHONPATH=src python tools/bench.py --smoke          # tiny grids, seconds
    PYTHONPATH=src python tools/bench.py --out other.json --repeats 5
    PYTHONPATH=src python tools/bench.py --compare OLD.json NEW.json
    PYTHONPATH=src python tools/bench.py --overhead       # tracer cost check
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any

import numpy as np

import repro
from repro import kernels, obs
from repro.core import QPConfig
from repro.compressors import get_compressor
from repro.parallel import ParallelCompressor
from repro.obs import throughput_mbs

SCHEMA_VERSION = 5

#: benchmark matrix: the four interpolation-based compressors QP integrates with
BASES = ("sz3", "qoz", "hpez", "mgard")

#: (dataset, shape) pairs; the 3-D synthetic dataset is the headline row
FULL_GRIDS = [("miranda", (64, 96, 96)), ("s3d", (48, 48, 48))]
SMOKE_GRIDS = [("miranda", (16, 20, 24))]

REL_EB = 1e-3


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _stage_profile(
    compressor, data: np.ndarray, blob: bytes, repeats: int = 1
) -> dict[str, Any]:
    """Observed compress + decompress; returns per-stage seconds/bytes.

    Each direction runs ``repeats`` times under a fresh
    :class:`repro.obs.Observation` and keeps the stage breakdown of the
    fastest run, so stage numbers carry the same best-of semantics as the
    end-to-end timings instead of single-shot scheduler noise.
    """
    out: dict[str, Any] = {}
    for direction, fn in (
        ("compress", lambda: compressor.compress(data)),
        ("decompress", lambda: compressor.decompress(blob)),
    ):
        best = None
        for _ in range(max(1, repeats)):
            ob = obs.Observation()
            with obs.observe(ob):
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
            if best is None or dt < best[0]:
                best = (dt, ob.stage_report(nbytes=data.nbytes))
        out[direction] = best[1]
    return out


def bench_one(
    base: str,
    data: np.ndarray,
    eb: float,
    qp: QPConfig | None,
    repeats: int,
) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    if qp is not None:
        kwargs["qp"] = qp
    comp = get_compressor(base, eb, **kwargs)
    blob = comp.compress(data)
    out = comp.decompress(blob)
    err = float(np.abs(out.astype(np.float64) - data.astype(np.float64)).max())
    if err > eb * (1 + 1e-9):
        raise RuntimeError(f"{base}: error bound violated ({err} > {eb})")
    c_s = _time_best(lambda: comp.compress(data), repeats)
    d_s = _time_best(lambda: comp.decompress(blob), repeats)
    return {
        "base": base,
        "qp": bool(qp is not None and qp.enabled),
        "error_bound": eb,
        "compressed_bytes": len(blob),
        "ratio": data.nbytes / len(blob),
        "compress_s": c_s,
        "decompress_s": d_s,
        "compress_mbs": throughput_mbs(data.nbytes, c_s),
        "decompress_mbs": throughput_mbs(data.nbytes, d_s),
        "max_error": err,
        "stages": _stage_profile(comp, data, blob, repeats),
    }


def bench_auto(
    base: str,
    data: np.ndarray,
    eb: float,
    repeats: int,
) -> dict[str, Any]:
    """One auto-tuned row: tune once, then time the tuned compressor.

    Tuning cost is deliberately excluded from the timed region — the row
    measures what the tuner *chose*, while its decision (and the adaptive
    fraction it produced) is recorded alongside so ratio changes can be
    traced to specific knobs.
    """
    comp = get_compressor(base, eb)
    tuned = comp._tuned_for(data)
    decision = tuned.tuning_decision
    blob = tuned.compress(data)
    out = tuned.decompress(blob)
    err = float(np.abs(out.astype(np.float64) - data.astype(np.float64)).max())
    if err > eb * (1 + 1e-9):
        raise RuntimeError(f"{base}+auto: error bound violated ({err} > {eb})")
    c_s = _time_best(lambda: tuned.compress(data), repeats)
    d_s = _time_best(lambda: tuned.decompress(blob), repeats)
    qp_cfg = getattr(tuned, "qp", None)
    return {
        "base": base,
        "auto": True,
        "qp": bool(qp_cfg is not None and qp_cfg.enabled),
        "error_bound": eb,
        "compressed_bytes": len(blob),
        "ratio": data.nbytes / len(blob),
        "compress_s": c_s,
        "decompress_s": d_s,
        "compress_mbs": throughput_mbs(data.nbytes, c_s),
        "decompress_mbs": throughput_mbs(data.nbytes, d_s),
        "max_error": err,
        "tuning": decision.to_dict() if decision is not None else None,
        "adaptive_fraction": (
            float(decision.adaptive_fraction) if decision is not None else 0.0
        ),
        "stages": _stage_profile(tuned, data, blob, repeats),
    }


def bench_parallel(
    data: np.ndarray, eb: float, qp: QPConfig, workers: int, repeats: int
) -> dict[str, Any]:
    comp = ParallelCompressor("sz3", eb, workers=workers, qp=qp)
    blob = comp.compress(data)  # warm the persistent pool
    out = comp.decompress(blob)
    err = float(np.abs(out.astype(np.float64) - data.astype(np.float64)).max())
    c_s = _time_best(lambda: comp.compress(data), repeats)
    d_s = _time_best(lambda: comp.decompress(blob), repeats)
    return {
        "base": f"sz3-parallel-{workers}",
        "qp": qp.enabled,
        "error_bound": eb,
        "compressed_bytes": len(blob),
        "ratio": data.nbytes / len(blob),
        "compress_s": c_s,
        "decompress_s": d_s,
        "compress_mbs": throughput_mbs(data.nbytes, c_s),
        "decompress_mbs": throughput_mbs(data.nbytes, d_s),
        "max_error": err,
        # stages recorded in-process: on boxes without real CPU concurrency
        # the decompress path runs batched in the parent (where the profiler
        # hooks fire); worker-side stage time is not visible here
        "stages": _stage_profile(comp, data, blob, repeats),
    }


def resolve_backends(requested: str) -> list[str]:
    """Expand ``--backends`` into the list of backend runs to execute.

    ``"auto"`` means numpy plus every compiled backend that can actually run
    (currently numba, when importable).  Explicitly named backends that are
    unavailable are skipped with a warning rather than silently benchmarked
    through the numpy fallback — that would mislabel the rows.
    """
    if requested == "auto":
        names = ["numpy"]
        if kernels.numba_available():
            names.append("numba")
        return names
    names = []
    for name in (s.strip() for s in requested.split(",")):
        if not name:
            continue
        usable = name == "numpy" or any(
            name in kernels.available_backends(stage)
            for stage in kernels.kernel_stages()
        )
        if not usable:
            print(f"skipping backend {name!r}: not available in this process",
                  file=sys.stderr)
            continue
        names.append(name)
    return names or ["numpy"]


def run(
    grids: list[tuple[str, tuple[int, ...]]],
    repeats: int,
    workers: int,
    backends: list[str] | None = None,
) -> dict[str, Any]:
    backends = backends or ["numpy"]
    results: list[dict[str, Any]] = []
    saved_env = os.environ.get(kernels.ENV_GLOBAL)
    try:
        for backend in backends:
            os.environ[kernels.ENV_GLOBAL] = backend
            resolved = kernels.active_backends()
            tag = f" [{backend}]" if len(backends) > 1 else ""
            for dataset, shape in grids:
                data = repro.generate(dataset, shape=shape, seed=0)
                eb = REL_EB * float(data.max() - data.min())
                for base in BASES:
                    for qp in (None, QPConfig()):
                        row = bench_one(base, data, eb, qp, repeats)
                        row.update({
                            "dataset": dataset,
                            "shape": list(shape),
                            "kernel_backend": backend,
                            "kernel_backends": resolved,
                        })
                        results.append(row)
                        print(
                            f"{dataset} {base:5s}"
                            f" qp={'on ' if row['qp'] else 'off'}"
                            f"  CR={row['ratio']:7.2f}"
                            f"  comp={row['compress_mbs']:8.2f} MB/s"
                            f"  decomp={row['decompress_mbs']:8.2f} MB/s"
                            f"{tag}",
                            flush=True,
                        )
                    row = bench_auto(base, data, eb, repeats)
                    row.update({
                        "dataset": dataset,
                        "shape": list(shape),
                        "kernel_backend": backend,
                        "kernel_backends": resolved,
                    })
                    results.append(row)
                    print(
                        f"{dataset} {base:5s} auto  "
                        f"  CR={row['ratio']:7.2f}"
                        f"  comp={row['compress_mbs']:8.2f} MB/s"
                        f"  decomp={row['decompress_mbs']:8.2f} MB/s"
                        f"  adaptive={row['adaptive_fraction']:.1%}"
                        f"{tag}",
                        flush=True,
                    )
                if workers > 1:
                    row = bench_parallel(data, eb, QPConfig(), workers, repeats)
                    row.update({
                        "dataset": dataset,
                        "shape": list(shape),
                        "kernel_backend": backend,
                        "kernel_backends": resolved,
                    })
                    results.append(row)
                    print(
                        f"{dataset} sz3-parallel-{workers} qp=on "
                        f"  CR={row['ratio']:7.2f}"
                        f"  comp={row['compress_mbs']:8.2f} MB/s"
                        f"  decomp={row['decompress_mbs']:8.2f} MB/s"
                        f"{tag}",
                        flush=True,
                    )
    finally:
        if saved_env is None:
            os.environ.pop(kernels.ENV_GLOBAL, None)
        else:
            os.environ[kernels.ENV_GLOBAL] = saved_env
    return {
        "schema_version": SCHEMA_VERSION,
        "rel_error_bound": REL_EB,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "has_stage_profiler": True,
        "timing_source": "repro.obs",
        "kernel_backends_run": backends,
        "numba_available": kernels.numba_available(),
        "results": results,
    }


def measure_overhead(
    shape: tuple[int, ...] = (48, 48, 48), repeats: int = 30
) -> dict[str, float]:
    """Enabled-vs-disabled tracer cost on an SZ3+QP roundtrip.

    Returns best-of-``repeats`` wall-clock for the bare roundtrip and the
    same roundtrip under an active observation, plus the relative overhead.
    The observability acceptance bar is <3% (docs/observability.md).
    """
    data = repro.generate("miranda", shape=shape, seed=0)
    eb = REL_EB * float(data.max() - data.min())
    comp = get_compressor("sz3", eb, qp=QPConfig())
    blob = comp.compress(data)

    def roundtrip():
        comp.decompress(comp.compress(data))

    def observed():
        with obs.observe(obs.Observation()):
            comp.decompress(comp.compress(data))

    roundtrip()  # warm caches/schedules before timing either variant
    _ = blob
    # interleave the variants so slow machine drift (thermal, page cache)
    # hits both equally instead of biasing whichever phase ran second
    disabled_s = enabled_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        roundtrip()
        disabled_s = min(disabled_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        observed()
        enabled_s = min(enabled_s, time.perf_counter() - t0)
    overhead = (enabled_s - disabled_s) / disabled_s
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_pct": overhead * 100.0,
    }


def _flatten_timings(report: dict[str, Any]) -> dict[str, float]:
    """Map ``dataset/base/qp:metric`` -> seconds for every timing in a report.

    Covers the end-to-end ``compress_s``/``decompress_s`` numbers and, when
    the report carries stage profiles, each ``compress.<stage>`` /
    ``decompress.<stage>`` wall-clock so regressions localise to a stage.
    Rows from a non-numpy kernel backend get a ``/backend=<name>`` suffix;
    numpy rows stay unsuffixed so a v4 run compares cleanly against a v3
    (backend-less) baseline.
    """
    out: dict[str, float] = {}
    for row in report.get("results", []):
        key = (
            f"{row.get('dataset', '?')}/{row.get('base', '?')}"
            f"/qp={'on' if row.get('qp') else 'off'}"
        )
        if row.get("auto"):
            key += "/auto"
        kb = row.get("kernel_backend")
        if kb and kb != "numpy":
            key += f"/backend={kb}"
        for metric in ("compress_s", "decompress_s"):
            if metric in row:
                out[f"{key}:{metric}"] = float(row[metric])
        for direction, prof in (row.get("stages") or {}).items():
            for stage, st in (prof.get("stages") or {}).items():
                sec = st.get("seconds")
                if sec is not None:
                    out[f"{key}:{direction}.{stage}"] = float(sec)
    return out


def compare_reports(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = 0.10,
    min_seconds: float = 1e-3,
) -> int:
    """Print a per-stage diff table; return the number of regressions.

    A metric regresses when it exists in both reports, the old value is at
    least ``min_seconds`` (micro-timings are pure noise), and the new value
    exceeds the old by more than ``threshold`` relative. Metrics present in
    only one report are listed but never counted as regressions.
    """
    old_t = _flatten_timings(old)
    new_t = _flatten_timings(new)
    regressions = 0
    shown = 0
    header = f"{'metric':58s} {'old(s)':>10s} {'new(s)':>10s} {'delta':>8s}"
    print(header)
    print("-" * len(header))
    for key in sorted(set(old_t) | set(new_t)):
        if key not in old_t:
            print(f"{key:58s} {'-':>10s} {new_t[key]:10.5f} {'new':>8s}")
            shown += 1
            continue
        if key not in new_t:
            print(f"{key:58s} {old_t[key]:10.5f} {'-':>10s} {'gone':>8s}")
            shown += 1
            continue
        o, n = old_t[key], new_t[key]
        rel = (n - o) / o if o > 0 else 0.0
        flag = ""
        if o >= min_seconds and rel > threshold:
            flag = "  REGRESSION"
            regressions += 1
        if flag or abs(rel) > threshold:
            print(f"{key:58s} {o:10.5f} {n:10.5f} {rel:+7.1%}{flag}")
            shown += 1
    if shown == 0:
        print(f"(no metric changed by more than {threshold:.0%})")
    print(
        f"compared {len(set(old_t) & set(new_t))} metrics, "
        f"{regressions} regression(s) past {threshold:.0%}"
    )
    return regressions


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny grids, one repeat")
    ap.add_argument("--out", default="BENCH_pipeline.json")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--workers", type=int, default=4,
                    help="slab-parallel workers (0 disables the parallel row)")
    ap.add_argument("--backends", default="auto",
                    help="comma-separated kernel backends to A/B "
                         "(default auto: numpy plus numba when importable)")
    ap.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                    help="diff two bench JSONs instead of running; exits "
                         "nonzero if any timing regressed past --threshold")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that counts as a regression")
    ap.add_argument("--min-seconds", type=float, default=1e-3,
                    help="ignore metrics whose old timing is below this")
    ap.add_argument("--overhead", action="store_true",
                    help="measure the enabled-tracer overhead on an SZ3+QP "
                         "roundtrip instead of running the benchmark")
    args = ap.parse_args(argv)

    if args.overhead:
        o = measure_overhead()
        print(
            f"tracer disabled: {o['disabled_s']:.4f}s  "
            f"enabled: {o['enabled_s']:.4f}s  "
            f"overhead: {o['overhead_pct']:+.2f}%"
        )
        return 0

    if args.compare:
        with open(args.compare[0]) as fh:
            old = json.load(fh)
        with open(args.compare[1]) as fh:
            new = json.load(fh)
        return 1 if compare_reports(old, new, args.threshold, args.min_seconds) else 0

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    repeats = 1 if args.smoke else args.repeats
    workers = 0 if args.smoke else args.workers
    report = run(grids, repeats, workers, resolve_backends(args.backends))
    report["smoke"] = args.smoke
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1)
    print(f"wrote {args.out} ({len(report['results'])} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
