#!/usr/bin/env python
"""Per-stage pipeline benchmark: the repo's performance regression baseline.

Runs the synthetic datasets through the four interpolation-based compressors
(SZ3/QoZ/HPEZ/MGARD) with QP on and off, measures end-to-end compression and
decompression throughput plus per-stage wall-clock and byte counters, and
writes everything to ``BENCH_pipeline.json``.

Schema v3: stage timings come from the :mod:`repro.obs` tracer (the single
timing source of truth), so the ``stages`` maps now also carry nested span
names (``compress``/``decompress`` roots, ``parallel.*`` fan-out,
``qp.forward``/``qp.inverse`` kernels) alongside the classic
predict/quantize/qp/huffman/lossless keys.  The per-row shape is unchanged
from v2, so ``--compare`` accepts a v2 baseline against a v3 run — span-only
keys new in v3 show up as ``new`` and are never counted as regressions.

Schema v4: the matrix is additionally run once per kernel backend
(``--backends``, default: numpy plus numba when importable).  Each row
records the requested ``kernel_backend`` and the resolved per-stage
``kernel_backends`` map from :func:`repro.kernels.active_backends`.  Flat
metric keys stay unsuffixed for the numpy rows and gain ``/backend=<name>``
otherwise, so ``--compare`` still accepts a v3 baseline: compiled-backend
keys show up as ``new`` and are never counted as regressions.

Schema v5: each base additionally gets one ``auto`` row per dataset — the
compressor is replaced by its sampling-tuned copy (``_tuned_for``) before
timing, and the row records the full tuner decision (``tuning``, the
``TuningDecision.to_dict()`` payload) plus the measured
``adaptive_fraction`` (share of points coded through reserved adaptive
indices).  Flat metric keys for these rows gain an ``/auto`` suffix, so
``--compare`` still accepts a v4 baseline: auto keys show up as ``new``
and are never counted as regressions.

Schema v6: every row records its peak resident set size — ``peak_rss_mb``
(absolute, sampled from ``/proc/self/statm`` at ~2 ms while the row runs)
and ``peak_rss_delta_mb`` (growth over the RSS at row start).  The largest
synthetic field additionally gets a paired in-memory/streamed measurement
(``stream_summary``): each path runs in its own subprocess so ``VmHWM``
isolates true peak memory, the streamed path reads the input through a
memmap and writes segments through :meth:`compress_stream`, and the summary
records the throughput and peak-RSS ratios the streaming gate enforces
(streamed >= 1.2x compress throughput, <= 0.5x peak RSS growth).  Flat
metric keys for streamed rows gain a ``/stream`` suffix, so ``--compare``
still accepts a v5 baseline: streamed keys show up as ``new`` and are never
counted as regressions.  ``--compare`` additionally diffs
``peak_rss_delta_mb`` per row and treats growth past ``--mem-threshold``
(default 15%) as a failure alongside the 10% timing gate; rows whose old
delta is below ~16 MB are allocator noise and never flagged.

Schema v7: reports may additionally carry a ``service_summary`` block —
the per-tenant latency/throughput digest ``tools/loadgen.py`` emits after
replaying seeded mixed traffic against a live gateway
(``{tenant: {p50_s, p99_s, throughput_mb_s, requests, rejected}}`` plus a
``_total`` roll-up).  ``--compare`` flattens these as
``service/<tenant>:p50_s``-style keys and diffs them with the same 10%
gate; a v6 baseline has no service keys, so they show up as ``new`` and
are never counted as regressions — v6→v7 comparisons stay green.

Every future performance PR reruns this harness and compares against the
committed JSON, so regressions in any stage are visible immediately.

Usage::

    PYTHONPATH=src python tools/bench.py                  # full run
    PYTHONPATH=src python tools/bench.py --smoke          # tiny grids, seconds
    PYTHONPATH=src python tools/bench.py --out other.json --repeats 5
    PYTHONPATH=src python tools/bench.py --compare OLD.json NEW.json
    PYTHONPATH=src python tools/bench.py --overhead       # tracer cost check
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any

import numpy as np

import repro
from repro import kernels, obs
from repro.core import QPConfig
from repro.compressors import get_compressor
from repro.parallel import ParallelCompressor
from repro.obs import throughput_mbs

SCHEMA_VERSION = 7

#: benchmark matrix: the four interpolation-based compressors QP integrates with
BASES = ("sz3", "qoz", "hpez", "mgard")

#: (dataset, shape) pairs; the 3-D synthetic dataset is the headline row
FULL_GRIDS = [("miranda", (64, 96, 96)), ("s3d", (48, 48, 48))]
SMOKE_GRIDS = [("miranda", (16, 20, 24))]

#: largest synthetic field: the streamed-vs-in-memory pairing runs here.
#: ~38.5 MB of f32 — big enough that the in-memory path's intermediates
#: spill the last-level cache while a single slab still fits.
#: (row label, generator dataset, shape) — the label keeps the flat metric
#: keys distinct from the regular miranda rows.
STREAM_GRID = ("miranda-large", "miranda", (192, 224, 224))
SMOKE_STREAM_GRID = ("miranda-small", "miranda", (24, 24, 32))

#: slab size for the streamed benchmark row; 6-12 MB is the measured
#: throughput plateau on this field and keeps the resident window small
STREAM_SLAB_BYTES = 6 << 20

REL_EB = 1e-3


class _RssSampler:
    """Samples ``/proc/self/statm`` on a daemon thread while a row runs.

    ``peak_mb``/``delta_mb`` are ``None`` when ``/proc`` is unavailable
    (non-Linux), so rows degrade gracefully instead of failing the run.
    Sampling at ~2 ms can miss very short allocation spikes; the paired
    streamed benchmark uses per-subprocess ``VmHWM`` where exactness
    matters.
    """

    def __init__(self, interval_s: float = 0.002) -> None:
        self.interval_s = interval_s
        self.peak_mb: float | None = None
        self.baseline_mb: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @staticmethod
    def _rss_mb() -> float | None:
        try:
            with open("/proc/self/statm") as fh:
                pages = int(fh.read().split()[1])
            return pages * os.sysconf("SC_PAGE_SIZE") / 1e6
        except (OSError, ValueError, IndexError):
            return None

    def _run(self) -> None:
        while not self._stop.is_set():
            rss = self._rss_mb()
            if rss is not None and (self.peak_mb is None or rss > self.peak_mb):
                self.peak_mb = rss
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "_RssSampler":
        self.baseline_mb = self._rss_mb()
        if self.baseline_mb is not None:
            self.peak_mb = self.baseline_mb
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        rss = self._rss_mb()
        if rss is not None and (self.peak_mb is None or rss > self.peak_mb):
            self.peak_mb = rss

    @property
    def delta_mb(self) -> float | None:
        if self.peak_mb is None or self.baseline_mb is None:
            return None
        return max(0.0, self.peak_mb - self.baseline_mb)


def _attach_rss(row: dict[str, Any], rss: _RssSampler) -> dict[str, Any]:
    row["peak_rss_mb"] = rss.peak_mb
    row["peak_rss_delta_mb"] = rss.delta_mb
    return row


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _stage_profile(
    compressor, data: np.ndarray, blob: bytes, repeats: int = 1
) -> dict[str, Any]:
    """Observed compress + decompress; returns per-stage seconds/bytes.

    Each direction runs ``repeats`` times under a fresh
    :class:`repro.obs.Observation` and keeps the stage breakdown of the
    fastest run, so stage numbers carry the same best-of semantics as the
    end-to-end timings instead of single-shot scheduler noise.
    """
    out: dict[str, Any] = {}
    for direction, fn in (
        ("compress", lambda: compressor.compress(data)),
        ("decompress", lambda: compressor.decompress(blob)),
    ):
        best = None
        for _ in range(max(1, repeats)):
            ob = obs.Observation()
            with obs.observe(ob):
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
            if best is None or dt < best[0]:
                best = (dt, ob.stage_report(nbytes=data.nbytes))
        out[direction] = best[1]
    return out


def bench_one(
    base: str,
    data: np.ndarray,
    eb: float,
    qp: QPConfig | None,
    repeats: int,
) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    if qp is not None:
        kwargs["qp"] = qp
    comp = get_compressor(base, eb, **kwargs)
    blob = comp.compress(data)
    out = comp.decompress(blob)
    err = float(np.abs(out.astype(np.float64) - data.astype(np.float64)).max())
    if err > eb * (1 + 1e-9):
        raise RuntimeError(f"{base}: error bound violated ({err} > {eb})")
    c_s = _time_best(lambda: comp.compress(data), repeats)
    d_s = _time_best(lambda: comp.decompress(blob), repeats)
    return {
        "base": base,
        "qp": bool(qp is not None and qp.enabled),
        "error_bound": eb,
        "compressed_bytes": len(blob),
        "ratio": data.nbytes / len(blob),
        "compress_s": c_s,
        "decompress_s": d_s,
        "compress_mbs": throughput_mbs(data.nbytes, c_s),
        "decompress_mbs": throughput_mbs(data.nbytes, d_s),
        "max_error": err,
        "stages": _stage_profile(comp, data, blob, repeats),
    }


def bench_auto(
    base: str,
    data: np.ndarray,
    eb: float,
    repeats: int,
) -> dict[str, Any]:
    """One auto-tuned row: tune once, then time the tuned compressor.

    Tuning cost is deliberately excluded from the timed region — the row
    measures what the tuner *chose*, while its decision (and the adaptive
    fraction it produced) is recorded alongside so ratio changes can be
    traced to specific knobs.
    """
    comp = get_compressor(base, eb)
    tuned = comp._tuned_for(data)
    decision = tuned.tuning_decision
    blob = tuned.compress(data)
    out = tuned.decompress(blob)
    err = float(np.abs(out.astype(np.float64) - data.astype(np.float64)).max())
    if err > eb * (1 + 1e-9):
        raise RuntimeError(f"{base}+auto: error bound violated ({err} > {eb})")
    c_s = _time_best(lambda: tuned.compress(data), repeats)
    d_s = _time_best(lambda: tuned.decompress(blob), repeats)
    qp_cfg = getattr(tuned, "qp", None)
    return {
        "base": base,
        "auto": True,
        "qp": bool(qp_cfg is not None and qp_cfg.enabled),
        "error_bound": eb,
        "compressed_bytes": len(blob),
        "ratio": data.nbytes / len(blob),
        "compress_s": c_s,
        "decompress_s": d_s,
        "compress_mbs": throughput_mbs(data.nbytes, c_s),
        "decompress_mbs": throughput_mbs(data.nbytes, d_s),
        "max_error": err,
        "tuning": decision.to_dict() if decision is not None else None,
        "adaptive_fraction": (
            float(decision.adaptive_fraction) if decision is not None else 0.0
        ),
        "stages": _stage_profile(tuned, data, blob, repeats),
    }


def bench_parallel(
    data: np.ndarray, eb: float, qp: QPConfig, workers: int, repeats: int
) -> dict[str, Any]:
    comp = ParallelCompressor("sz3", eb, workers=workers, qp=qp)
    blob = comp.compress(data)  # warm the persistent pool
    out = comp.decompress(blob)
    err = float(np.abs(out.astype(np.float64) - data.astype(np.float64)).max())
    c_s = _time_best(lambda: comp.compress(data), repeats)
    d_s = _time_best(lambda: comp.decompress(blob), repeats)
    return {
        "base": f"sz3-parallel-{workers}",
        "qp": qp.enabled,
        "error_bound": eb,
        "compressed_bytes": len(blob),
        "ratio": data.nbytes / len(blob),
        "compress_s": c_s,
        "decompress_s": d_s,
        "compress_mbs": throughput_mbs(data.nbytes, c_s),
        "decompress_mbs": throughput_mbs(data.nbytes, d_s),
        "max_error": err,
        # stages recorded in-process: on boxes without real CPU concurrency
        # the decompress path runs batched in the parent (where the profiler
        # hooks fire); worker-side stage time is not visible here
        "stages": _stage_profile(comp, data, blob, repeats),
    }


#: child program for the paired streamed benchmark.  Each path runs in its
#: own interpreter so VmHWM (the kernel's per-process peak-RSS high-water
#: mark, reset by exec) cleanly isolates the memory footprint — consecutive
#: in-process rows contaminate each other through retained allocator arenas.
_STREAM_CHILD_SRC = r"""
import json, os, sys, threading, time
import numpy as np

mode, npy, eb, slab, repeats = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), int(sys.argv[4]),
    int(sys.argv[5]),
)
from repro import QPConfig
from repro.compressors import get_compressor


def rss_mb():
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE") / 1e6
    except (OSError, ValueError, IndexError):
        return None


class Sampler:
    # peak RSS sampled only while the compress loop runs: the memory gate
    # is about the compress path, and whole-process VmHWM would fold the
    # decompress repeats' allocator arenas into the streamed row's peak
    def __init__(self):
        self.peak = self.baseline = rss_mb()
        self._stop = threading.Event()
        self._t = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            r = rss_mb()
            if r is not None and (self.peak is None or r > self.peak):
                self.peak = r
            self._stop.wait(0.002)

    def __enter__(self):
        if self.baseline is not None:
            self._t.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        if self._t.is_alive():
            self._t.join()
        r = rss_mb()
        if r is not None and (self.peak is None or r > self.peak):
            self.peak = r

    @property
    def delta(self):
        if self.peak is None or self.baseline is None:
            return None
        return max(0.0, self.peak - self.baseline)


comp = get_compressor("sz3", eb, qp=QPConfig())
out = {"mode": mode}
if mode == "mem":
    data = np.load(npy)
    best = float("inf")
    blob = b""
    with Sampler() as smp:
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            blob = comp.compress(data)
            best = min(best, time.perf_counter() - t0)
    d_best = float("inf")
    dec = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        dec = comp.decompress(blob)
        d_best = min(d_best, time.perf_counter() - t0)
    err = float(np.abs(dec.astype(np.float64) - data.astype(np.float64)).max())
    out.update(compress_s=best, decompress_s=d_best,
               compressed_bytes=len(blob), nbytes=int(data.nbytes),
               max_error=err, segments=None)
else:
    data = np.load(npy, mmap_mode="r")
    sink_path = npy + ".rstr"
    best = float("inf")
    res = None
    with Sampler() as smp:
        for _ in range(max(1, repeats)):
            with open(sink_path, "wb") as sink:
                t0 = time.perf_counter()
                res = comp.compress_stream(data, sink, slab_bytes=slab)
                best = min(best, time.perf_counter() - t0)
    d_best = float("inf")
    dec = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        dec = comp.decompress_stream(sink_path)
        d_best = min(d_best, time.perf_counter() - t0)
    err = float(np.abs(dec.astype(np.float64)
                       - np.asarray(data).astype(np.float64)).max())
    out.update(compress_s=best, decompress_s=d_best,
               compressed_bytes=int(res.total_bytes), nbytes=int(res.input_bytes),
               max_error=err, segments=int(res.segments),
               backpressure_wait_s=float(res.backpressure_wait_s),
               buffer_reuse=dict(res.buffer_reuse))
    os.unlink(sink_path)
out["baseline_mb"] = smp.baseline
out["peak_rss_mb"] = smp.peak
out["peak_rss_delta_mb"] = smp.delta
json.dump(out, sys.stdout)
"""


def bench_stream_pair(
    dataset: str,
    generator: str,
    shape: tuple[int, ...],
    repeats: int,
    slab_bytes: int = STREAM_SLAB_BYTES,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """In-memory vs streamed sz3+QP on one field, each in its own process.

    ``dataset`` labels the rows (kept distinct from the regular grid rows
    so flat metric keys don't collide); ``generator`` names the synthetic
    field to draw.  Returns the two result rows plus the
    ``stream_summary`` record holding the throughput and peak-RSS ratios
    the streaming acceptance gate reads.
    """
    data = repro.generate(generator, shape=shape, seed=0)
    eb = REL_EB * float(data.max() - data.min())
    fd, npy = tempfile.mkstemp(suffix=".npy")
    os.close(fd)
    rows: list[dict[str, Any]] = []
    child_out: dict[str, dict[str, Any]] = {}
    try:
        np.save(npy, data)
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        for mode in ("mem", "stream"):
            proc = subprocess.run(
                [sys.executable, "-c", _STREAM_CHILD_SRC, mode, npy,
                 repr(eb), str(slab_bytes), str(repeats)],
                capture_output=True, text=True, env=env,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"stream bench child ({mode}) failed:\n{proc.stderr}")
            child_out[mode] = json.loads(proc.stdout)
    finally:
        if os.path.exists(npy):
            os.unlink(npy)
    for mode in ("mem", "stream"):
        r = child_out[mode]
        if r["max_error"] > eb * (1 + 1e-9):
            raise RuntimeError(
                f"stream bench ({mode}): error bound violated "
                f"({r['max_error']} > {eb})")
        row = {
            "dataset": dataset,
            "shape": list(shape),
            "base": "sz3",
            "qp": True,
            "stream": mode == "stream",
            "error_bound": eb,
            "compressed_bytes": r["compressed_bytes"],
            "ratio": r["nbytes"] / r["compressed_bytes"],
            "compress_s": r["compress_s"],
            "decompress_s": r["decompress_s"],
            "compress_mbs": throughput_mbs(r["nbytes"], r["compress_s"]),
            "decompress_mbs": throughput_mbs(r["nbytes"], r["decompress_s"]),
            "max_error": r["max_error"],
            "peak_rss_mb": r["peak_rss_mb"],
            "peak_rss_delta_mb": r["peak_rss_delta_mb"],
            "isolated_subprocess": True,
        }
        if mode == "stream":
            row.update(
                slab_bytes=slab_bytes,
                segments=r["segments"],
                backpressure_wait_s=r.get("backpressure_wait_s"),
                buffer_reuse=r.get("buffer_reuse"),
            )
        rows.append(row)
    mem, stream = rows
    t_ratio = (
        stream["compress_mbs"] / mem["compress_mbs"]
        if mem["compress_mbs"] else None
    )
    m_old, m_new = mem["peak_rss_delta_mb"], stream["peak_rss_delta_mb"]
    r_ratio = m_new / m_old if m_old and m_new is not None else None
    summary = {
        "dataset": dataset,
        "shape": list(shape),
        "slab_bytes": slab_bytes,
        "compress_throughput_ratio": t_ratio,
        "peak_rss_delta_ratio": r_ratio,
        "gates": {
            "throughput_ok": t_ratio is not None and t_ratio >= 1.2,
            "rss_ok": r_ratio is not None and r_ratio <= 0.5,
        },
    }
    return rows, summary


def resolve_backends(requested: str) -> list[str]:
    """Expand ``--backends`` into the list of backend runs to execute.

    ``"auto"`` means numpy plus every compiled backend that can actually run
    (currently numba, when importable).  Explicitly named backends that are
    unavailable are skipped with a warning rather than silently benchmarked
    through the numpy fallback — that would mislabel the rows.
    """
    if requested == "auto":
        names = ["numpy"]
        if kernels.numba_available():
            names.append("numba")
        return names
    names = []
    for name in (s.strip() for s in requested.split(",")):
        if not name:
            continue
        usable = name == "numpy" or any(
            name in kernels.available_backends(stage)
            for stage in kernels.kernel_stages()
        )
        if not usable:
            print(f"skipping backend {name!r}: not available in this process",
                  file=sys.stderr)
            continue
        names.append(name)
    return names or ["numpy"]


def run(
    grids: list[tuple[str, tuple[int, ...]]],
    repeats: int,
    workers: int,
    backends: list[str] | None = None,
    stream_grid: tuple[str, str, tuple[int, ...]] | None = STREAM_GRID,
) -> dict[str, Any]:
    backends = backends or ["numpy"]
    results: list[dict[str, Any]] = []
    saved_env = os.environ.get(kernels.ENV_GLOBAL)
    try:
        for backend in backends:
            os.environ[kernels.ENV_GLOBAL] = backend
            resolved = kernels.active_backends()
            tag = f" [{backend}]" if len(backends) > 1 else ""
            for dataset, shape in grids:
                data = repro.generate(dataset, shape=shape, seed=0)
                eb = REL_EB * float(data.max() - data.min())
                for base in BASES:
                    for qp in (None, QPConfig()):
                        with _RssSampler() as rss:
                            row = bench_one(base, data, eb, qp, repeats)
                        _attach_rss(row, rss)
                        row.update({
                            "dataset": dataset,
                            "shape": list(shape),
                            "kernel_backend": backend,
                            "kernel_backends": resolved,
                        })
                        results.append(row)
                        print(
                            f"{dataset} {base:5s}"
                            f" qp={'on ' if row['qp'] else 'off'}"
                            f"  CR={row['ratio']:7.2f}"
                            f"  comp={row['compress_mbs']:8.2f} MB/s"
                            f"  decomp={row['decompress_mbs']:8.2f} MB/s"
                            f"{tag}",
                            flush=True,
                        )
                    with _RssSampler() as rss:
                        row = bench_auto(base, data, eb, repeats)
                    _attach_rss(row, rss)
                    row.update({
                        "dataset": dataset,
                        "shape": list(shape),
                        "kernel_backend": backend,
                        "kernel_backends": resolved,
                    })
                    results.append(row)
                    print(
                        f"{dataset} {base:5s} auto  "
                        f"  CR={row['ratio']:7.2f}"
                        f"  comp={row['compress_mbs']:8.2f} MB/s"
                        f"  decomp={row['decompress_mbs']:8.2f} MB/s"
                        f"  adaptive={row['adaptive_fraction']:.1%}"
                        f"{tag}",
                        flush=True,
                    )
                if workers > 1:
                    with _RssSampler() as rss:
                        row = bench_parallel(data, eb, QPConfig(), workers,
                                             repeats)
                    _attach_rss(row, rss)
                    row.update({
                        "dataset": dataset,
                        "shape": list(shape),
                        "kernel_backend": backend,
                        "kernel_backends": resolved,
                    })
                    results.append(row)
                    print(
                        f"{dataset} sz3-parallel-{workers} qp=on "
                        f"  CR={row['ratio']:7.2f}"
                        f"  comp={row['compress_mbs']:8.2f} MB/s"
                        f"  decomp={row['decompress_mbs']:8.2f} MB/s"
                        f"{tag}",
                        flush=True,
                    )
    finally:
        if saved_env is None:
            os.environ.pop(kernels.ENV_GLOBAL, None)
        else:
            os.environ[kernels.ENV_GLOBAL] = saved_env
    stream_summary = None
    if stream_grid is not None:
        dataset, generator, shape = stream_grid
        # the in-memory half of the pair is slow on the large field, so a
        # single repeat keeps the harness runtime sane; the subprocess
        # isolation already removes most scheduler noise from the ratio
        stream_rows, stream_summary = bench_stream_pair(
            dataset, generator, shape, repeats=min(repeats, 2))
        results.extend(stream_rows)
        for row in stream_rows:
            label = "stream" if row["stream"] else "in-mem"
            print(
                f"{dataset} sz3   qp=on  [{label:7s}]"
                f"  CR={row['ratio']:7.2f}"
                f"  comp={row['compress_mbs']:8.2f} MB/s"
                f"  peakRSS={row['peak_rss_delta_mb'] or 0:7.1f} MB",
                flush=True,
            )
        g = stream_summary["gates"]
        t_r = stream_summary["compress_throughput_ratio"]
        r_r = stream_summary["peak_rss_delta_ratio"]
        print(
            f"stream gates: throughput x{t_r:.2f}" if t_r is not None
            else "stream gates: throughput n/a",
            end="", flush=True,
        )
        print(
            f" ({'ok' if g['throughput_ok'] else 'FAIL'} >=1.2), "
            + (f"peak-RSS x{r_r:.2f}" if r_r is not None else "peak-RSS n/a")
            + f" ({'ok' if g['rss_ok'] else 'FAIL'} <=0.5)",
            flush=True,
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "rel_error_bound": REL_EB,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "has_stage_profiler": True,
        "timing_source": "repro.obs",
        "has_rss_sampler": _RssSampler._rss_mb() is not None,
        "kernel_backends_run": backends,
        "numba_available": kernels.numba_available(),
        "stream_summary": stream_summary,
        "results": results,
    }


def measure_overhead(
    shape: tuple[int, ...] = (48, 48, 48), repeats: int = 30
) -> dict[str, float]:
    """Enabled-vs-disabled tracer cost on an SZ3+QP roundtrip.

    Returns best-of-``repeats`` wall-clock for the bare roundtrip and the
    same roundtrip under an active observation, plus the relative overhead.
    The observability acceptance bar is <3% (docs/observability.md).
    """
    data = repro.generate("miranda", shape=shape, seed=0)
    eb = REL_EB * float(data.max() - data.min())
    comp = get_compressor("sz3", eb, qp=QPConfig())
    blob = comp.compress(data)

    def roundtrip():
        comp.decompress(comp.compress(data))

    def observed():
        with obs.observe(obs.Observation()):
            comp.decompress(comp.compress(data))

    roundtrip()  # warm caches/schedules before timing either variant
    _ = blob
    # interleave the variants so slow machine drift (thermal, page cache)
    # hits both equally instead of biasing whichever phase ran second
    disabled_s = enabled_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        roundtrip()
        disabled_s = min(disabled_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        observed()
        enabled_s = min(enabled_s, time.perf_counter() - t0)
    overhead = (enabled_s - disabled_s) / disabled_s
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_pct": overhead * 100.0,
    }


def _flatten_timings(report: dict[str, Any]) -> dict[str, float]:
    """Map ``dataset/base/qp:metric`` -> seconds for every timing in a report.

    Covers the end-to-end ``compress_s``/``decompress_s`` numbers and, when
    the report carries stage profiles, each ``compress.<stage>`` /
    ``decompress.<stage>`` wall-clock so regressions localise to a stage.
    Rows from a non-numpy kernel backend get a ``/backend=<name>`` suffix;
    numpy rows stay unsuffixed so a v4 run compares cleanly against a v3
    (backend-less) baseline.
    """
    out: dict[str, float] = {}
    for row in report.get("results", []):
        key = (
            f"{row.get('dataset', '?')}/{row.get('base', '?')}"
            f"/qp={'on' if row.get('qp') else 'off'}"
        )
        if row.get("auto"):
            key += "/auto"
        if row.get("stream"):
            key += "/stream"
        kb = row.get("kernel_backend")
        if kb and kb != "numpy":
            key += f"/backend={kb}"
        for metric in ("compress_s", "decompress_s"):
            if metric in row:
                out[f"{key}:{metric}"] = float(row[metric])
        for direction, prof in (row.get("stages") or {}).items():
            for stage, st in (prof.get("stages") or {}).items():
                sec = st.get("seconds")
                if sec is not None:
                    out[f"{key}:{direction}.{stage}"] = float(sec)
    # v7 service rows: per-tenant latency quantiles from the loadgen replay.
    # Reports without the block (all pre-v7 baselines) simply contribute no
    # service keys, so they compare as ``new`` and never regress.
    for tenant, digest in (report.get("service_summary") or {}).items():
        for metric in ("p50_s", "p99_s"):
            val = (digest or {}).get(metric)
            if val is not None:
                out[f"service/{tenant}:{metric}"] = float(val)
    return out


def _flatten_memory(report: dict[str, Any]) -> dict[str, float]:
    """Map ``dataset/base/qp`` row keys -> ``peak_rss_delta_mb``.

    Only the *delta* (growth while the row ran) is compared: the absolute
    peak carries the interpreter baseline plus whatever earlier rows left
    in allocator arenas, which says nothing about the row itself.  Rows
    from pre-v6 baselines simply have no memory keys and compare as
    ``new``.
    """
    out: dict[str, float] = {}
    for row in report.get("results", []):
        delta = row.get("peak_rss_delta_mb")
        if delta is None:
            continue
        key = (
            f"{row.get('dataset', '?')}/{row.get('base', '?')}"
            f"/qp={'on' if row.get('qp') else 'off'}"
        )
        if row.get("auto"):
            key += "/auto"
        if row.get("stream"):
            key += "/stream"
        kb = row.get("kernel_backend")
        if kb and kb != "numpy":
            key += f"/backend={kb}"
        out[key] = float(delta)
    return out


#: RSS deltas below this are allocator noise (arena growth, page rounding)
#: and are never flagged as memory regressions, whatever the relative move
MEM_NOISE_FLOOR_MB = 16.0


def compare_reports(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = 0.10,
    min_seconds: float = 1e-3,
    mem_threshold: float = 0.15,
) -> int:
    """Print a per-stage diff table; return the number of regressions.

    A timing metric regresses when it exists in both reports, the old value
    is at least ``min_seconds`` (micro-timings are pure noise), and the new
    value exceeds the old by more than ``threshold`` relative.  A memory
    metric (``peak_rss_delta_mb`` per row) regresses when the old delta is
    at least :data:`MEM_NOISE_FLOOR_MB` and the new delta exceeds it by
    more than ``mem_threshold`` relative.  Metrics present in only one
    report are listed but never counted as regressions.
    """
    old_t = _flatten_timings(old)
    new_t = _flatten_timings(new)
    regressions = 0
    shown = 0
    header = f"{'metric':58s} {'old(s)':>10s} {'new(s)':>10s} {'delta':>8s}"
    print(header)
    print("-" * len(header))
    for key in sorted(set(old_t) | set(new_t)):
        if key not in old_t:
            print(f"{key:58s} {'-':>10s} {new_t[key]:10.5f} {'new':>8s}")
            shown += 1
            continue
        if key not in new_t:
            print(f"{key:58s} {old_t[key]:10.5f} {'-':>10s} {'gone':>8s}")
            shown += 1
            continue
        o, n = old_t[key], new_t[key]
        rel = (n - o) / o if o > 0 else 0.0
        flag = ""
        if o >= min_seconds and rel > threshold:
            flag = "  REGRESSION"
            regressions += 1
        if flag or abs(rel) > threshold:
            print(f"{key:58s} {o:10.5f} {n:10.5f} {rel:+7.1%}{flag}")
            shown += 1
    if shown == 0:
        print(f"(no metric changed by more than {threshold:.0%})")
    print(
        f"compared {len(set(old_t) & set(new_t))} metrics, "
        f"{regressions} regression(s) past {threshold:.0%}"
    )

    old_m = _flatten_memory(old)
    new_m = _flatten_memory(new)
    mem_regressions = 0
    mem_shown = 0
    if old_m or new_m:
        header = f"{'memory (peak RSS delta)':58s} {'old(MB)':>10s} {'new(MB)':>10s} {'delta':>8s}"
        print()
        print(header)
        print("-" * len(header))
        for key in sorted(set(old_m) | set(new_m)):
            if key not in old_m:
                print(f"{key:58s} {'-':>10s} {new_m[key]:10.1f} {'new':>8s}")
                mem_shown += 1
                continue
            if key not in new_m:
                print(f"{key:58s} {old_m[key]:10.1f} {'-':>10s} {'gone':>8s}")
                mem_shown += 1
                continue
            o, n = old_m[key], new_m[key]
            rel = (n - o) / o if o > 0 else 0.0
            flag = ""
            if o >= MEM_NOISE_FLOOR_MB and rel > mem_threshold:
                flag = "  REGRESSION"
                mem_regressions += 1
            if flag or abs(rel) > mem_threshold:
                print(f"{key:58s} {o:10.1f} {n:10.1f} {rel:+7.1%}{flag}")
                mem_shown += 1
        if mem_shown == 0:
            print(f"(no row's peak RSS moved more than {mem_threshold:.0%})")
        print(
            f"compared {len(set(old_m) & set(new_m))} memory rows, "
            f"{mem_regressions} regression(s) past {mem_threshold:.0%}"
        )
    return regressions + mem_regressions


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny grids, one repeat")
    ap.add_argument("--out", default="BENCH_pipeline.json")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--workers", type=int, default=4,
                    help="slab-parallel workers (0 disables the parallel row)")
    ap.add_argument("--backends", default="auto",
                    help="comma-separated kernel backends to A/B "
                         "(default auto: numpy plus numba when importable)")
    ap.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                    help="diff two bench JSONs instead of running; exits "
                         "nonzero if any timing regressed past --threshold")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that counts as a regression")
    ap.add_argument("--min-seconds", type=float, default=1e-3,
                    help="ignore metrics whose old timing is below this")
    ap.add_argument("--mem-threshold", type=float, default=0.15,
                    help="relative peak-RSS growth that counts as a "
                         "memory regression in --compare")
    ap.add_argument("--no-stream", action="store_true",
                    help="skip the paired in-memory/streamed benchmark")
    ap.add_argument("--overhead", action="store_true",
                    help="measure the enabled-tracer overhead on an SZ3+QP "
                         "roundtrip instead of running the benchmark")
    args = ap.parse_args(argv)

    if args.overhead:
        o = measure_overhead()
        print(
            f"tracer disabled: {o['disabled_s']:.4f}s  "
            f"enabled: {o['enabled_s']:.4f}s  "
            f"overhead: {o['overhead_pct']:+.2f}%"
        )
        return 0

    if args.compare:
        with open(args.compare[0]) as fh:
            old = json.load(fh)
        with open(args.compare[1]) as fh:
            new = json.load(fh)
        return 1 if compare_reports(old, new, args.threshold, args.min_seconds,
                                    args.mem_threshold) else 0

    grids = SMOKE_GRIDS if args.smoke else FULL_GRIDS
    repeats = 1 if args.smoke else args.repeats
    workers = 0 if args.smoke else args.workers
    stream_grid = None if args.no_stream else (
        SMOKE_STREAM_GRID if args.smoke else STREAM_GRID)
    report = run(grids, repeats, workers, resolve_backends(args.backends),
                 stream_grid=stream_grid)
    report["smoke"] = args.smoke
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1)
    print(f"wrote {args.out} ({len(report['results'])} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
