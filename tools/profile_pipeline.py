#!/usr/bin/env python
"""Profile the compression pipeline, guide-style ("no optimization without
measuring").

Prints the top functions by cumulative time for SZ3 compression and
decompression, with and without QP — the view that motivated the vectorized
Huffman lockstep decode and the wavefront QP inverse.

Run:  python tools/profile_pipeline.py [dataset] [rel_eb]
"""
import cProfile
import io
import pstats
import sys

import repro
from repro.core import QPConfig


def profile_call(label: str, fn) -> None:
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    stream = io.StringIO()
    stats = pstats.Stats(prof, stream=stream)
    stats.sort_stats("cumulative").print_stats(12)
    print(f"\n=== {label} ===")
    # keep only the table body lines
    lines = stream.getvalue().splitlines()
    for line in lines[4:22]:
        print(line)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "miranda"
    rel = float(sys.argv[2]) if len(sys.argv) > 2 else 1e-4
    data = repro.generate(dataset)
    eb = rel * float(data.max() - data.min())
    print(f"profiling on {dataset} {data.shape}, eb={eb:.3g}")

    base = repro.SZ3(eb, predictor="interp")
    plus = repro.SZ3(eb, predictor="interp", qp=QPConfig())
    blob_base = base.compress(data)
    blob_plus = plus.compress(data)

    profile_call("compress (base)", lambda: base.compress(data))
    profile_call("compress (+QP)", lambda: plus.compress(data))
    profile_call("decompress (base)", lambda: base.decompress(blob_base))
    profile_call("decompress (+QP)", lambda: plus.decompress(blob_plus))


if __name__ == "__main__":
    main()
