#!/usr/bin/env python
"""API-surface lint: every compressor must satisfy the ``Codec`` protocol.

The :class:`repro.compressors.Codec` protocol pins the unified surface

    name: str
    compress(data, *, checksum=False, auto=False, adaptive=None) -> bytes
    decompress(blob) -> np.ndarray

``isinstance`` against a ``runtime_checkable`` Protocol only proves the
attributes *exist*; this lint additionally inspects the signatures so a
conforming-by-name but incompatible-by-shape implementation (a positional
``checksum``, a required extra argument, a missing keyword) fails loudly in
CI instead of at a call site.

Checked objects: one instance of every registered compressor
(``repro.compressors.COMPRESSORS``) plus the wrapper compressors
(parallel / temporal / pointwise-relative / QoI-preserving).

The lint also holds every *registered pipeline* to the stage-pipeline
contract (:func:`check_pipeline`): every stage id resolves to a registered
stage type, every stage builds from its spec params and exposes the
``forward``/``inverse`` pair, the explicit ``to_header``/``from_header``
encoding round-trips and enforces the version-bump rule (an unknown
version is a typed :class:`~repro.errors.VersionError`, never a silent
parse), the ``cls_path`` resolves to a class whose ``name`` matches the
registration, and the registry's ``supports_qp`` answer agrees with the
spec.

A third family of checks (:func:`check_kernels`) lints the kernel backend
registry: every registered compiled kernel backend must expose exactly the
ops of the numpy reference backend for its stage, with matching parameter
lists, so backend selection can never change a call's shape — only its
speed.

Run directly (``python tools/check_api.py``, exit 0/1) or through the test
suite (``tests/test_codec_api.py`` imports :func:`check_all`).
"""
from __future__ import annotations

import inspect
import sys
from typing import Any

sys.path.insert(0, "src")


def _candidates() -> dict[str, Any]:
    """name -> instance for every object the lint holds to the Codec bar."""
    from repro.compressors import COMPRESSORS, get_compressor
    from repro.modes import PointwiseRelativeCompressor
    from repro.parallel import ParallelCompressor
    from repro.qoi import QoIPreservingCompressor, SquareQoI
    from repro.temporal import TemporalCompressor

    out: dict[str, Any] = {
        name: get_compressor(name, 1e-3) for name in COMPRESSORS
    }
    out["parallel[sz3]"] = ParallelCompressor("sz3", 1e-3)
    out["temporal"] = TemporalCompressor("sz3", 1e-3)
    out["pw_rel"] = PointwiseRelativeCompressor("sz3", 1e-3)
    out["qoi[sz3]"] = QoIPreservingCompressor("sz3", SquareQoI(), tau=1e-3)
    return out


def check_codec(obj: Any) -> list[str]:
    """Return the list of Codec-protocol violations for ``obj`` (empty = ok)."""
    from repro.compressors import Codec

    problems: list[str] = []
    if not isinstance(obj, Codec):
        missing = [a for a in ("name", "compress", "decompress") if not hasattr(obj, a)]
        problems.append(f"does not satisfy Codec (missing: {missing})")
        return problems

    if not isinstance(obj.name, str) or not obj.name:
        problems.append(f"name must be a non-empty str, got {obj.name!r}")

    problems += _check_compress_sig(obj)
    problems += _check_decompress_sig(obj)
    return problems


def _check_compress_sig(obj: Any) -> list[str]:
    problems: list[str] = []
    try:
        sig = inspect.signature(obj.compress)
    except (TypeError, ValueError):
        return ["compress: signature not introspectable"]
    params = list(sig.parameters.values())
    if not params or params[0].kind not in (
        inspect.Parameter.POSITIONAL_ONLY,
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
    ):
        problems.append("compress: first parameter must accept data positionally")
        return problems
    # the uniform knob set: same names, same kinds, same defaults everywhere
    for knob, default in (("checksum", False), ("auto", False), ("adaptive", None)):
        p = sig.parameters.get(knob)
        if p is None:
            problems.append(f"compress: missing keyword-only {knob!r} parameter")
            continue
        if p.kind is not inspect.Parameter.KEYWORD_ONLY:
            problems.append(f"compress: {knob!r} must be keyword-only")
        if p.default is not default:
            problems.append(
                f"compress: {knob!r} must default to {default!r}, got {p.default!r}"
            )
    for p in params[1:]:
        if p.kind in (inspect.Parameter.VAR_KEYWORD, inspect.Parameter.VAR_POSITIONAL):
            continue
        if p.kind is not inspect.Parameter.KEYWORD_ONLY:
            problems.append(
                f"compress: extra parameter {p.name!r} must be keyword-only"
            )
        if p.default is inspect.Parameter.empty:
            problems.append(f"compress: extra parameter {p.name!r} must have a default")
    return problems


def _check_decompress_sig(obj: Any) -> list[str]:
    problems: list[str] = []
    try:
        sig = inspect.signature(obj.decompress)
    except (TypeError, ValueError):
        return ["decompress: signature not introspectable"]
    params = list(sig.parameters.values())
    if not params or params[0].kind not in (
        inspect.Parameter.POSITIONAL_ONLY,
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
    ):
        problems.append("decompress: first parameter must accept the blob positionally")
        return problems
    for p in params[1:]:
        if p.kind in (inspect.Parameter.VAR_KEYWORD, inspect.Parameter.VAR_POSITIONAL):
            continue
        if p.default is inspect.Parameter.empty:
            problems.append(
                f"decompress: extra parameter {p.name!r} must have a default"
            )
    return problems


def check_pipeline(name: str) -> list[str]:
    """Return the stage-pipeline-contract violations for a registered
    pipeline (empty = ok)."""
    from repro.compressors import supports_qp
    from repro.errors import PipelineSpecError, UnknownStageError, VersionError
    from repro.pipeline import PipelineSpec, pipeline, pipeline_spec, resolve_stage
    from repro.pipeline.spec import SPEC_HEADER_VERSION

    problems: list[str] = []
    try:
        spec = pipeline_spec(name)
    except Exception as exc:  # noqa: BLE001 - lint reports, never crashes
        return [f"spec builder failed: {exc!r}"]

    # every stage id resolvable, every stage buildable with a forward/inverse pair
    for s in spec.stages:
        try:
            resolve_stage(s.stage)
        except UnknownStageError as exc:
            problems.append(f"stage {s.stage!r} does not resolve: {exc}")
            continue
        try:
            stage = s.build()
        except Exception as exc:  # noqa: BLE001
            problems.append(f"stage {s.stage!r} failed to build from params: {exc!r}")
            continue
        if getattr(stage, "stage_id", None) != s.stage:
            problems.append(f"stage {s.stage!r}: built object claims id "
                            f"{getattr(stage, 'stage_id', None)!r}")
        for method in ("forward", "inverse"):
            if not callable(getattr(stage, method, None)):
                problems.append(f"stage {s.stage!r}: missing callable {method!r}")

    # explicit header encoding round-trips and enforces the version-bump rule
    encoded = spec.to_header()
    try:
        if PipelineSpec.from_header(encoded) != spec:
            problems.append("to_header/from_header round-trip changed the spec")
    except Exception as exc:  # noqa: BLE001
        problems.append(f"from_header rejected its own encoding: {exc!r}")
    bumped = dict(encoded, version=SPEC_HEADER_VERSION + 1)
    try:
        PipelineSpec.from_header(bumped)
        problems.append("from_header accepted an unsupported spec version")
    except VersionError:
        pass
    try:
        PipelineSpec.from_header(dict(encoded, version="1"))
        problems.append("from_header accepted a non-integer spec version")
    except PipelineSpecError:
        pass

    # registration metadata: cls_path resolves to the matching class, and the
    # registry's capability view agrees with the spec
    try:
        module_name, _, cls_name = pipeline(name).cls_path.partition(":")
        import importlib

        cls = getattr(importlib.import_module(module_name), cls_name)
        if getattr(cls, "name", None) != name:
            problems.append(
                f"cls_path class names itself {getattr(cls, 'name', None)!r}"
            )
    except Exception as exc:  # noqa: BLE001
        problems.append(f"cls_path does not resolve: {exc!r}")
    if supports_qp(name) != spec.has_stage("qp"):
        problems.append("supports_qp() disagrees with the spec's qp stage")

    return problems


def check_kernel_stage(stage: str) -> list[str]:
    """Backend-parity violations for one kernel stage (empty = ok).

    Every registered compiled backend must implement exactly the ops the
    numpy reference implements, with matching parameter lists — so a caller
    resolved to *any* backend can make the same calls.  Jitted ops are
    introspected through ``__wrapped__`` or the backend's ``introspect``
    map when ``inspect.signature`` cannot see through the wrapper.
    """
    from repro import kernels

    problems: list[str] = []
    names = kernels.registered_backends(stage)
    if "numpy" not in names:
        return [f"no numpy reference backend registered for stage {stage!r}"]
    ref = kernels.backend(stage, "numpy")

    def params(b, op):
        fn = b.ops[op]
        if b.introspect and op in b.introspect:
            fn = b.introspect[op]
        try:
            return [
                (p.name, p.kind)
                for p in inspect.signature(fn).parameters.values()
            ]
        except (TypeError, ValueError):
            return None

    ref_params = {op: params(ref, op) for op in ref.ops}
    for name in names:
        if name == "numpy":
            continue
        b = kernels.backend(stage, name)
        missing = sorted(set(ref.ops) - set(b.ops))
        extra = sorted(set(b.ops) - set(ref.ops))
        if missing:
            problems.append(f"{name}: missing ops {missing} (no numpy parity)")
        if extra:
            problems.append(f"{name}: extra ops {extra} absent from numpy")
        for op in sorted(set(ref.ops) & set(b.ops)):
            got = params(b, op)
            if got is None:
                problems.append(f"{name}.{op}: signature not introspectable")
            elif got != ref_params[op]:
                problems.append(
                    f"{name}.{op}: signature {[n for n, _ in got]} != "
                    f"numpy's {[n for n, _ in ref_params[op]]}"
                )
    return problems


def check_kernels() -> dict[str, list[str]]:
    """``kernels[stage]`` -> backend-parity violations for every kernel stage."""
    from repro import kernels

    return {
        f"kernels[{stage}]": check_kernel_stage(stage)
        for stage in kernels.kernel_stages()
    }


def check_adaptive_stage() -> list[str]:
    """Contract violations for the adaptive-quantize stage (empty = ok).

    Four families of checks:

    * ``AdaptiveConfig`` encoding round-trips, and malformed untrusted
      headers (out-of-range bits, non-int fields, unknown keys) raise the
      typed :class:`~repro.errors.CorruptBlobError` — never a silent parse.
    * The adaptive spec *variant* (an engine pipeline re-derived with an
      ``adaptive`` header block) swaps exactly the quantize stage id and
      still honours the version-bump rule.
    * The stage constructor validates its reserved-index parameters up
      front, so a bad header fails at build time, not mid-decode.
    * A small numeric encode/decode round-trip: the global bound holds and
      reserved-index (hard) points meet the tightened bound.
    """
    import numpy as np

    from repro.core.config import ADAPTIVE_MAX_BITS, AdaptiveConfig
    from repro.errors import CorruptBlobError, VersionError
    from repro.pipeline import PipelineSpec
    from repro.pipeline.builders import sz3_pipeline
    from repro.pipeline.spec import SPEC_HEADER_VERSION
    from repro.quantize import AdaptiveLinearQuantizer

    problems: list[str] = []

    # -- config encoding round-trip + typed rejection -------------------------
    cfg = AdaptiveConfig(bits=3, threshold=2)
    if AdaptiveConfig.from_dict(cfg.to_dict()) != cfg:
        problems.append("AdaptiveConfig to_dict/from_dict round-trip changed it")
    for bad in (
        {"bits": 0, "threshold": 4},
        {"bits": ADAPTIVE_MAX_BITS + 1, "threshold": 4},
        {"bits": 2, "threshold": 0},
        {"bits": "2", "threshold": 4},
        {"bits": 2, "threshold": 4, "mystery": 1},
        "not-a-dict",
    ):
        try:
            AdaptiveConfig.from_dict(bad)
            problems.append(f"from_dict accepted malformed header {bad!r}")
        except CorruptBlobError:
            pass

    # -- spec variant: only the quantize stage id changes, versioning holds ---
    base = sz3_pipeline()
    variant = sz3_pipeline(adaptive=cfg.to_dict())
    base_ids = [s.stage for s in base.stages]
    var_ids = [s.stage for s in variant.stages]
    swapped = [
        (a, b) for a, b in zip(base_ids, var_ids) if a != b
    ]
    if swapped != [("quantize", "adaptive_quantize")] or len(base_ids) != len(var_ids):
        problems.append(
            f"adaptive variant changed stages {swapped} (expected exactly "
            "quantize -> adaptive_quantize)"
        )
    q = variant.stage("adaptive_quantize")
    if q.params.get("adaptive_bits") != cfg.bits or q.params.get("threshold") != cfg.threshold:
        problems.append(f"adaptive stage params {q.params} do not carry the config")
    encoded = variant.to_header()
    try:
        if PipelineSpec.from_header(encoded) != variant:
            problems.append("adaptive spec to_header/from_header changed the spec")
    except Exception as exc:  # noqa: BLE001
        problems.append(f"adaptive spec from_header rejected its encoding: {exc!r}")
    try:
        PipelineSpec.from_header(dict(encoded, version=SPEC_HEADER_VERSION + 1))
        problems.append("adaptive spec from_header accepted an unsupported version")
    except VersionError:
        pass

    # -- constructor validates reserved-index parameters up front -------------
    for kwargs in ({"bits": 0}, {"bits": ADAPTIVE_MAX_BITS + 1}, {"threshold": 0}):
        try:
            AdaptiveLinearQuantizer(1e-3, **kwargs)
            problems.append(f"AdaptiveLinearQuantizer accepted {kwargs}")
        except ValueError:
            pass

    # -- numeric round-trip: global + tightened bounds ------------------------
    rng = np.random.default_rng(7)
    values = rng.normal(size=257).astype(np.float32)
    preds = values + rng.normal(scale=2e-2, size=values.size).astype(np.float32)
    eb = 1e-3
    quant = AdaptiveLinearQuantizer(eb, bits=cfg.bits, threshold=cfg.threshold)
    res = quant.quantize(values, preds)
    recon = quant.dequantize(res.indices, preds, literals=res.literals)
    err = np.abs(recon.astype(np.float64) - values.astype(np.float64))
    if not np.all(err <= eb * (1 + 1e-12)):
        problems.append(f"roundtrip global bound violated: max err {err.max():.3e}")
    hard = (np.abs(res.indices) >= cfg.threshold) & (res.indices != quant.sentinel)
    if hard.any() and not np.all(err[hard] <= quant.tight_bound * (1 + 1e-12)):
        problems.append(
            f"hard points exceed tightened bound {quant.tight_bound:.3e}"
        )
    if not np.array_equal(recon, res.decoded):
        problems.append("dequantize(indices) != encode-side decoded (bit drift)")
    return problems


def check_pipelines() -> dict[str, list[str]]:
    """``pipeline[name]`` -> violations for every registered pipeline."""
    from repro.pipeline import registered_pipelines

    return {
        f"pipeline[{name}]": check_pipeline(name)
        for name in registered_pipelines()
    }


def check_streaming() -> list[str]:
    """Streaming-surface lint (empty = ok).

    Holds the streaming mode to its contracts: the incremental
    ``ContainerWriter``/``ContainerReader`` round-trip with strictly
    monotone, contiguous offsets and typed truncation/corruption errors;
    ``compress_stream``/``decompress_stream`` signature conformance across
    every registered compressor (mirroring the Codec bar: data+sink
    positional, extras defaulted); a streamed-vs-in-memory byte-identity
    spot check; and the stage graph fully partitioned onto the streaming
    front/entropy thread stages (``STREAM_STAGE_GROUPS``).
    """
    import io

    import numpy as np

    from repro.compressors import COMPRESSORS, get_compressor
    from repro.errors import IntegrityError, TruncatedStreamError
    from repro.io.container import ContainerReader, ContainerWriter
    from repro.pipeline.builders import pipeline_spec, registered_pipelines
    from repro.pipeline.stages import STREAM_STAGE_GROUPS

    problems: list[str] = []

    # -- writer/reader round-trip + offset monotonicity ---------------------
    segments = [b"alpha-segment", b"bravo!", b"charlie-segment-3"]
    sink = io.BytesIO()
    with ContainerWriter(sink, axis=0, meta={"k": "v"}) as w:
        for seg in segments:
            w.append(seg)
    raw = sink.getvalue()
    try:
        r = ContainerReader(raw)
        if [r.segment(i) for i in range(len(r))] != segments:
            problems.append("container: segments did not round-trip")
        if r.meta.get("k") != "v":
            problems.append("container: meta did not round-trip")
        offs = r.offsets()
        if offs != sorted(set(offs)) or any(
            offs[i][0] + offs[i][1] != offs[i + 1][0] for i in range(len(offs) - 1)
        ):
            problems.append(f"container: offsets not monotone/contiguous: {offs}")
    except Exception as exc:  # pragma: no cover - lint reporting
        problems.append(f"container: round-trip raised {type(exc).__name__}: {exc}")
    try:
        ContainerReader(raw[:-9])
        problems.append("container: truncated stream must raise TruncatedStreamError")
    except TruncatedStreamError:
        pass
    corrupt = bytearray(raw)
    corrupt[len(segments[0]) // 2 + 8] ^= 0xFF  # flip a payload byte
    try:
        ContainerReader(bytes(corrupt)).segment(0)
        problems.append("container: corrupt segment must raise IntegrityError")
    except IntegrityError:
        pass

    # -- compress_stream / decompress_stream signatures ---------------------
    for name in COMPRESSORS:
        comp = get_compressor(name, 1e-3)
        for attr in ("compress_stream", "decompress_stream"):
            if not callable(getattr(comp, attr, None)):
                problems.append(f"{name}: missing {attr}")
                continue
            sig = inspect.signature(getattr(comp, attr))
            params = list(sig.parameters.values())
            positional = [
                p for p in params
                if p.kind in (inspect.Parameter.POSITIONAL_ONLY,
                              inspect.Parameter.POSITIONAL_OR_KEYWORD)
            ]
            need = 2 if attr == "compress_stream" else 1
            if len(positional) < need:
                problems.append(
                    f"{name}: {attr} must take {need} positional parameter(s)"
                )
            for p in params[need:]:
                if p.kind in (inspect.Parameter.VAR_KEYWORD,
                              inspect.Parameter.VAR_POSITIONAL):
                    continue
                if p.default is inspect.Parameter.empty:
                    problems.append(
                        f"{name}: {attr} extra parameter {p.name!r} must "
                        f"have a default"
                    )

    # -- streamed segment byte-identity spot check --------------------------
    rng = np.random.default_rng(11)
    data = np.cumsum(rng.normal(size=(24, 10, 8)), axis=0).astype(np.float32)
    comp = get_compressor("sz3", 1e-3)
    sink = io.BytesIO()
    comp.compress_stream(data, sink, slab_bytes=8 * 10 * 8 * 4)
    r = ContainerReader(sink.getvalue())
    from repro.streaming import plan_slabs

    slabs = plan_slabs(data.shape, data.dtype, 8 * 10 * 8 * 4)
    for i, sl in enumerate(slabs):
        if r.segment(i) != comp.compress(np.ascontiguousarray(data[sl])):
            problems.append(f"sz3: streamed segment {i} != compress(slab)")
    if not np.array_equal(
        comp.decompress_stream(sink.getvalue()),
        np.concatenate(
            [comp.decompress(comp.compress(np.ascontiguousarray(data[sl])))
             for sl in slabs]
        ),
    ):
        problems.append("sz3: decompress_stream != per-slab decompress")

    # -- every pipeline stage claimed by exactly one streaming group --------
    claimed = STREAM_STAGE_GROUPS["front"] | STREAM_STAGE_GROUPS["entropy"]
    overlap = STREAM_STAGE_GROUPS["front"] & STREAM_STAGE_GROUPS["entropy"]
    if overlap:
        problems.append(f"STREAM_STAGE_GROUPS groups overlap: {sorted(overlap)}")
    for pname in registered_pipelines():
        for s in pipeline_spec(pname).stages:
            if s.stage not in claimed:
                problems.append(
                    f"pipeline {pname!r}: stage {s.stage!r} not claimed by "
                    f"any STREAM_STAGE_GROUPS group"
                )
    return problems


def check_public_api() -> list[str]:
    """Frozen top-level surface lint (empty = ok).

    ``repro.__all__`` is a contract: exactly the promoted names, each
    present and of the promised kind.  Anything else reaching the top
    level is private-by-convention and must *not* creep into ``__all__``
    without a deliberate API-freeze change here.
    """
    import repro

    problems: list[str] = []
    frozen = [
        "AdaptiveConfig", "Codec", "PipelineSpec",
        "compress", "decompress", "open_archive", "serve", "__version__",
    ]
    if sorted(repro.__all__) != sorted(frozen):
        problems.append(
            f"repro.__all__ changed: {sorted(repro.__all__)} != {sorted(frozen)}"
        )
    for name in frozen:
        if not hasattr(repro, name):
            problems.append(f"repro.{name} is promised by __all__ but missing")
    for fn in ("compress", "decompress", "open_archive", "serve"):
        if hasattr(repro, fn) and not callable(getattr(repro, fn)):
            problems.append(f"repro.{fn} must be callable")
    # the one-call compress exposes the same knob set as the Codec protocol
    if hasattr(repro, "compress"):
        sig = inspect.signature(repro.compress)
        for knob, default in (("checksum", False), ("auto", False),
                              ("adaptive", None)):
            p = sig.parameters.get(knob)
            if p is None or p.kind is not inspect.Parameter.KEYWORD_ONLY \
                    or p.default is not default:
                problems.append(
                    f"repro.compress: keyword-only {knob}={default!r} required"
                )
    return problems


def check_service() -> list[str]:
    """Service wire-schema lint (empty = ok).

    Pins the gateway's request/reply contract so it cannot silently
    drift: every message kind encode/decode round-trips through the
    ``RSV1`` framing; a bumped schema revision is a typed
    :class:`~repro.errors.VersionError`; truncated and trailing-byte
    frames are typed rejections; and the error taxonomy's ``reason``
    tags (the wire error codes) are unique and frozen.
    """
    import numpy as np

    from repro import errors
    from repro.service import (
        SCHEMA_VERSION,
        ArchiveGetRequest,
        ArchivePutRequest,
        CompressRequest,
        DecompressRequest,
        JobSpec,
        RangeGetRequest,
        ServiceReply,
        decode_message,
        encode_message,
    )

    problems: list[str] = []
    arr = np.arange(24, dtype=np.float32).reshape(4, 6)
    spec = JobSpec(compressor="sz3", error_bound=1e-3, auto=True)
    messages = [
        CompressRequest.from_array("t", arr, spec),
        DecompressRequest(tenant="t", blob=b"\x01\x02"),
        ArchivePutRequest.from_array("t", "entry", arr, spec),
        ArchiveGetRequest(tenant="t", name="entry"),
        RangeGetRequest(tenant="t", name="entry", level=3, start=128),
        RangeGetRequest(tenant="t", name="entry"),
        ServiceReply(request_id="r", op="compress", result=b"xyz",
                     meta={"n": 1}),
        ServiceReply(request_id="r", op="compress", ok=False,
                     error="quota", message="over quota"),
    ]
    for msg in messages:
        frame = encode_message(msg)
        try:
            back = decode_message(frame)
        except Exception as exc:  # noqa: BLE001 - lint reports, never crashes
            problems.append(f"{type(msg).__name__}: decode raised {exc!r}")
            continue
        if type(back) is not type(msg):
            problems.append(
                f"{type(msg).__name__}: decoded as {type(back).__name__}"
            )
            continue
        if encode_message(back) != frame:
            problems.append(
                f"{type(msg).__name__}: re-encode is not byte-identical"
            )

    # spec round-trip + batch-key stability
    if JobSpec.from_dict(spec.to_dict()) != spec:
        problems.append("JobSpec to_dict/from_dict round-trip changed it")
    if spec.batch_key != JobSpec.from_dict(spec.to_dict()).batch_key:
        problems.append("JobSpec batch_key is not stable across round-trip")

    # schema pinning and framing rejections are typed
    frame = encode_message(messages[0])
    import json as _json
    import struct as _struct

    (hlen,) = _struct.unpack_from("<I", frame, 4)
    header = _json.loads(frame[8:8 + hlen].decode())
    header["schema"] = SCHEMA_VERSION + 1
    hb = _json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    bumped = frame[:4] + _struct.pack("<I", len(hb)) + hb + frame[8 + hlen:]
    try:
        decode_message(bumped)
        problems.append("decode accepted an unsupported schema revision")
    except errors.VersionError:
        pass
    try:
        decode_message(frame[:-1])
        problems.append("decode accepted a truncated payload")
    except errors.TruncatedStreamError:
        pass
    try:
        decode_message(frame + b"x")
        problems.append("decode accepted trailing bytes")
    except errors.CorruptBlobError:
        pass
    try:
        decode_message(b"NOPE" + frame[4:])
        problems.append("decode accepted a wrong magic")
    except errors.CorruptBlobError:
        pass

    # the error taxonomy's wire codes are unique and frozen
    taxonomy = {
        errors.ServiceError: "service",
        errors.AdmissionError: "admission",
        errors.RateLimitedError: "rate_limited",
        errors.QuotaExceededError: "quota",
        errors.QueueFullError: "queue_full",
        errors.ServiceClosedError: "closed",
        errors.ServiceRequestError: "bad_request",
        errors.TenantAccessError: "forbidden",
    }
    for cls, reason in taxonomy.items():
        if cls.reason != reason:
            problems.append(
                f"{cls.__name__}.reason changed: {cls.reason!r} != {reason!r}"
            )
    reasons = [cls.reason for cls in taxonomy]
    if len(set(reasons)) != len(reasons):
        problems.append(f"duplicate error reason tags: {sorted(reasons)}")
    return problems


def check_progressive() -> list[str]:
    """Progressive-spec lint (empty = ok).

    Holds ``sz3_progressive`` blobs to the level-ordered wire contract:

    * the ``progressive`` header extension's level table is strictly
      coarse-first with strictly increasing byte offsets, the last offset
      exactly the blob end, and :func:`level_table` reads back what
      ``_compress`` wrote (header round-trip);
    * an unknown extension version is a typed
      :class:`~repro.errors.VersionError`, never a silent parse — the
      same bump rule every other versioned header obeys;
    * decoding the full prefix chain (the first ``offset[k]`` bytes for
      the final level ``k=1``) is bit-identical to ``decompress`` *and*
      to plain ``sz3``'s interp reconstruction (the reordering is wire
      layout only);
    * every recorded per-level bound holds for its prefix preview.
    """
    import numpy as np

    from repro.compressors import get_compressor
    from repro.compressors.base import Blob
    from repro.compressors.progressive import (
        decompress_prefix,
        level_table,
    )
    from repro.errors import CorruptBlobError, TruncatedStreamError, VersionError

    problems: list[str] = []
    rng = np.random.default_rng(17)
    data = np.cumsum(
        np.cumsum(rng.normal(size=(14, 12, 10)), axis=0), axis=1
    ).astype(np.float32)
    eb = 1e-3 * float(data.max() - data.min())
    comp = get_compressor("sz3_progressive", eb)
    blob = comp.compress(data)

    # -- table structure + header round-trip ---------------------------------
    table = level_table(blob)
    if not table:
        return ["progressive blob has an empty level table"]
    levels = [e["level"] for e in table]
    ends = [e["end"] for e in table]
    if levels != sorted(levels, reverse=True) or len(set(levels)) != len(levels):
        problems.append(f"level indices not strictly coarse-first: {levels}")
    if ends != sorted(set(ends)):
        problems.append(f"level offsets not strictly increasing: {ends}")
    if ends[-1] != len(blob):
        problems.append(
            f"final level offset {ends[-1]} != blob length {len(blob)}"
        )
    parsed = Blob.from_bytes(blob)
    ext = parsed.header.get("progressive", {})
    header_levels = [e["level"] for e in ext.get("levels", [])]
    if header_levels != levels:
        problems.append(
            f"level_table() levels {levels} != header levels {header_levels}"
        )

    # -- version-bump rule ----------------------------------------------------
    tampered = Blob(dict(parsed.header), dict(parsed.sections))
    tampered.header = dict(tampered.header)
    tampered.header["progressive"] = dict(ext, version=ext.get("version", 1) + 1)
    try:
        decompress_prefix(tampered.to_bytes())
        problems.append("decompress_prefix accepted an unknown extension version")
    except VersionError:
        pass
    no_ext = Blob(
        {k: v for k, v in parsed.header.items() if k != "progressive"},
        dict(parsed.sections),
    )
    try:
        level_table(no_ext.to_bytes())
        problems.append("level_table parsed a blob with no progressive extension")
    except CorruptBlobError:
        pass

    # -- prefix/full decode parity at the final level -------------------------
    full = comp.decompress(blob)
    chain = decompress_prefix(blob[: ends[-1]])
    if chain.level != levels[-1]:
        problems.append(
            f"full prefix decoded at level {chain.level}, expected {levels[-1]}"
        )
    if not np.array_equal(chain.array, full):
        problems.append("full prefix chain is not bit-identical to decompress()")
    plain = get_compressor("sz3", eb, predictor="interp")
    if not np.array_equal(full, plain.decompress(plain.compress(data))):
        problems.append(
            "sz3_progressive reconstruction differs from plain sz3 interp"
        )

    # -- per-level bounds hold; short prefixes are typed ----------------------
    for e in table:
        preview = decompress_prefix(blob[: e["end"]])
        err = float(np.abs(preview.array.astype(np.float64) - data).max())
        if err > preview.eb:
            problems.append(
                f"level {e['level']} preview error {err:.3e} exceeds the "
                f"recorded bound {preview.eb:.3e}"
            )
    try:
        decompress_prefix(blob[: max(ends[0] - 1, 0)])
        problems.append("a prefix below the coarsest level must raise typed")
    except TruncatedStreamError:
        pass
    return problems


def check_all() -> dict[str, list[str]]:
    """name -> violations for every candidate (empty dict values = all clean)."""
    out = {name: check_codec(obj) for name, obj in _candidates().items()}
    out.update(check_pipelines())
    out.update(check_kernels())
    out["stage[adaptive_quantize]"] = check_adaptive_stage()
    out["streaming"] = check_streaming()
    out["public-api"] = check_public_api()
    out["service"] = check_service()
    out["progressive"] = check_progressive()
    return out


def main() -> int:
    results = check_all()
    bad = 0
    for name in sorted(results):
        problems = results[name]
        if problems:
            bad += 1
            print(f"FAIL {name}")
            for p in problems:
                print(f"     - {p}")
        else:
            print(f"ok   {name}")
    total = len(results)
    print(f"{total - bad}/{total} API-surface checks pass "
          f"(Codec + pipeline + kernel lint)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
