"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build a PEP-660 editable wheel; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation --config-settings editable_mode=compat``)
installs the same editable package through the legacy path.
"""
from setuptools import setup

setup()
